"""Regression: the optimized engine reproduces the seed engine's schemes.

``golden_schemes.json`` captures, for every point of the paper's E7 grid
(five Figure-3 families × n=7..16 × Khan/C/U, failed disk 0, depth 1), the
scheme the original pure-Python uniform-cost search returned: cost key,
read mask and full equation chain.  The seed search is deterministic, so
the overhauled engine — incremental cost models, early-goal cutoff and the
optional compiled kernel — must return byte-identical schemes, not merely
cost-identical ones.
"""

import json
from pathlib import Path

import pytest

from repro.codes import make_code
from repro.recovery import c_scheme, khan_scheme, u_scheme

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_schemes.json").read_text()
)
ALGORITHMS = {"khan": khan_scheme, "c": c_scheme, "u": u_scheme}


def _point_id(rec):
    return f"{rec['family']}-n{rec['n_disks']}-{rec['algorithm']}"


@pytest.mark.parametrize(
    "rec", GOLDEN["records"], ids=[_point_id(r) for r in GOLDEN["records"]]
)
def test_scheme_matches_seed_engine(rec):
    code = make_code(rec["family"], rec["n_disks"])
    scheme = ALGORITHMS[rec["algorithm"]](code, 0, depth=1)
    # the optimality contract: identical cost keys everywhere
    assert scheme.total_reads == rec["total_reads"]
    assert scheme.max_load == rec["max_load"]
    assert scheme.exact == rec["exact"]
    # the determinism contract: the seed UCS was deterministic, so the
    # optimized engine must pick the very same scheme, not just an
    # equally-cheap one
    assert hex(scheme.read_mask) == rec["read_mask"]
    assert [hex(e) for e in scheme.equations] == rec["equations"]


def test_grid_is_complete():
    """All five families, all widths with an instance, all algorithms."""
    seen = {(r["family"], r["algorithm"]) for r in GOLDEN["records"]}
    assert len(GOLDEN["records"]) == 150
    for family in ("blaum_roth", "evenodd", "rdp", "liberation", "star"):
        for alg in ("khan", "c", "u"):
            assert (family, alg) in seen
