"""End-to-end fault-injected recovery through the resilient executor.

The acceptance scenario of the fault-hardening layer: encode random
stripes, inject (a) a latent sector error, (b) a silent corruption, (c) a
second disk failure mid-rebuild, and require byte-identical recovery in
every case with the fault report recording what was done — while the
no-fault path stays byte-identical (reads and results) to the plain
executor.
"""

import numpy as np
import pytest

from repro.codec import StripeCodec, execute_scheme
from repro.codes import RdpCode, StarCode
from repro.faults import (
    DiskFailure,
    FaultPlan,
    FaultyStripeStore,
    LatentSectorError,
    SilentCorruption,
    SlowDisk,
)
from repro.recovery import ResilientExecutor, u_scheme
from repro.recovery.multifailure import UnrecoverableError


@pytest.fixture(scope="module")
def code():
    return RdpCode(7)


@pytest.fixture(scope="module")
def scheme(code):
    return u_scheme(code, 0)


@pytest.fixture(scope="module")
def stripes(code):
    codec = StripeCodec(code, element_size=64)
    rng = np.random.default_rng(11)
    return [codec.encode(codec.random_data(rng)) for _ in range(4)]


def run(code, scheme, stripes, faults, **kwargs):
    store = FaultyStripeStore(code.layout, stripes, FaultPlan(faults))
    executor = ResilientExecutor(code, scheme, store, **kwargs)
    return executor.run(), store


class TestNoFaultPath:
    def test_byte_identical_to_plain_executor(self, code, scheme, stripes):
        result, store = run(code, scheme, stripes, [])
        assert result.verify_against(stripes)
        for s, out in enumerate(result.recovered):
            plain = execute_scheme(scheme, stripes[s])
            assert set(out) == set(plain)
            for eid in out:
                assert np.array_equal(out[eid], plain[eid])

    def test_reads_exactly_the_planned_set(self, code, scheme, stripes):
        result, store = run(code, scheme, stripes, [])
        report = result.report
        assert report.per_stripe_read_masks == [scheme.read_mask] * len(stripes)
        assert report.extra_elements_read == 0
        assert report.total_retries == 0
        assert not report.substitutions
        assert not report.escalations
        assert store.total_read_attempts == scheme.total_reads * len(stripes)


class TestLatentSectorError:
    def test_recovers_via_substitution(self, code, scheme, stripes):
        lay = code.layout
        disk, row = next(lay.iter_elements(scheme.read_mask))
        result, _ = run(
            code, scheme, stripes, [LatentSectorError(disk, row, stripe=1)]
        )
        assert result.verify_against(stripes)
        report = result.report
        assert report.latent_errors == 1
        assert report.total_retries >= 1
        assert report.retries_per_disk.get(disk, 0) >= 1
        subs = report.substitutions
        assert subs and all(s["stripe"] == 1 for s in subs)
        assert all(s["reason"] == "latent sector error" for s in subs)
        # the substituted equations avoid the bad element
        bad = 1 << lay.eid(disk, row)
        for s in subs:
            assert s["substitute_equation"] & bad == 0
        # only the faulted stripe read extra elements
        assert report.per_stripe_read_masks[0] == scheme.read_mask
        assert report.per_stripe_read_masks[1] != scheme.read_mask

    def test_persistent_lse_substitutes_every_stripe(self, code, scheme, stripes):
        lay = code.layout
        disk, row = next(lay.iter_elements(scheme.read_mask))
        result, _ = run(code, scheme, stripes, [LatentSectorError(disk, row)])
        assert result.verify_against(stripes)
        assert result.report.latent_errors == len(stripes)


class TestSilentCorruption:
    def test_checksum_catches_and_recovers(self, code, scheme, stripes):
        lay = code.layout
        disk, row = next(lay.iter_elements(scheme.read_mask))
        result, _ = run(
            code, scheme, stripes, [SilentCorruption(disk, row, stripe=2)]
        )
        assert result.verify_against(stripes)
        report = result.report
        assert report.corruptions_detected == 1
        assert report.substitutions
        assert all(
            s["reason"] == "checksum mismatch" for s in report.substitutions
        )


class TestSecondDiskFailure:
    def test_escalates_and_recovers(self, code, scheme, stripes):
        lay = code.layout
        # a surviving disk the plan reads from
        dead = next(
            d for d, _ in lay.iter_elements(scheme.read_mask) if d != 0
        )
        result, _ = run(
            code, scheme, stripes, [DiskFailure(dead, at_stripe=2)]
        )
        assert result.verify_against(stripes)
        report = result.report
        assert len(report.escalations) == 1
        esc = report.escalations[0]
        assert esc["stripe"] == 2
        assert esc["secondary_disk"] == dead
        # stripes after the escalation rebuild both disks
        both = lay.disk_mask(0) | lay.disk_mask(dead)
        for out in result.recovered[2:]:
            got = 0
            for eid in out:
                got |= 1 << eid
            assert got == both
        # the escalated stripes never read either dead disk
        for mask in report.per_stripe_read_masks[2:]:
            assert mask & both == 0

    def test_third_failure_unrecoverable(self, code, scheme, stripes):
        with pytest.raises(UnrecoverableError, match="died after"):
            run(
                code,
                scheme,
                stripes,
                [DiskFailure(2, at_stripe=1), DiskFailure(3, at_stripe=2)],
            )

    def test_escalation_with_lse_on_tolerant_code(self):
        """STAR (3-fault-tolerant) survives a death plus a latent error."""
        code = StarCode(7)
        codec = StripeCodec(code, element_size=32)
        rng = np.random.default_rng(5)
        stripes = [codec.encode(codec.random_data(rng)) for _ in range(3)]
        scheme = u_scheme(code, 0)
        result, _ = run(
            code,
            scheme,
            stripes,
            [DiskFailure(4, at_stripe=1), LatentSectorError(2, 1)],
        )
        assert result.verify_against(stripes)
        assert result.report.escalated
        assert result.report.substitutions


class TestSlowDisk:
    def test_no_byte_effect_but_timing_inflation(self, code, scheme, stripes):
        from repro.disksim import DiskArraySimulator

        lay = code.layout
        disk, _ = next(lay.iter_elements(scheme.read_mask))
        plan = FaultPlan([SlowDisk(disk, 4.0)])
        result, _ = run(code, scheme, stripes, list(plan.faults))
        assert result.verify_against(stripes)
        assert result.report.extra_elements_read == 0

        clean = DiskArraySimulator(lay.n_disks)
        slow = DiskArraySimulator(lay.n_disks, fault_plan=plan)
        assert slow.stripe_recovery_time(
            lay, scheme.read_mask
        ) > clean.stripe_recovery_time(lay, scheme.read_mask)


class TestValidation:
    def test_negative_retries_rejected(self, code, scheme, stripes):
        store = FaultyStripeStore(code.layout, stripes)
        with pytest.raises(ValueError, match="max_retries"):
            ResilientExecutor(code, scheme, store, max_retries=-1)
