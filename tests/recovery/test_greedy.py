"""Tests for the greedy approximate generator."""

import pytest

from repro.codec import verify_scheme_on_random_data
from repro.codes import EvenOddCode, Liber8tionCode, RdpCode, make_code
from repro.recovery import greedy_scheme, khan_scheme, u_scheme


class TestValidity:
    @pytest.mark.parametrize("alg", ["khan", "c", "u"])
    def test_schemes_valid_and_executable(self, alg):
        code = RdpCode(7)
        for disk in code.layout.data_disks:
            s = greedy_scheme(code, disk, algorithm=alg)
            s.validate(code)
            assert verify_scheme_on_random_data(code, s, seed=1)

    def test_flagged_inexact(self):
        s = greedy_scheme(RdpCode(5), 0)
        assert not s.exact
        assert s.algorithm == "greedy_u"

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            greedy_scheme(RdpCode(5), 0, algorithm="x")


class TestQuality:
    def test_within_one_of_exact_on_rdp(self):
        code = RdpCode(11)
        for disk in (0, 3, 7):
            exact = u_scheme(code, disk, depth=1)
            approx = greedy_scheme(code, disk, algorithm="u")
            assert approx.max_load <= exact.max_load + 1

    def test_khan_mode_total_close(self):
        code = EvenOddCode(7)
        for disk in (0, 2):
            exact = khan_scheme(code, disk, depth=1)
            approx = greedy_scheme(code, disk, algorithm="khan")
            assert approx.total_reads <= exact.total_reads + code.layout.k_rows

    def test_restarts_never_hurt(self):
        code = Liber8tionCode(8)
        one = greedy_scheme(code, 1, algorithm="u", restarts=1)
        many = greedy_scheme(code, 1, algorithm="u", restarts=5)
        assert (many.max_load, many.total_reads) <= (one.max_load, one.total_reads)

    def test_much_cheaper_than_exact(self):
        code = make_code("rdp", 14)
        exact = u_scheme(code, 0, depth=1)
        approx = greedy_scheme(code, 0, algorithm="u")
        assert approx.expanded_states < exact.expanded_states / 50
