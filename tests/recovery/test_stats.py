"""Tests for scheme statistics."""

import pytest

from repro.codes import RdpCode
from repro.recovery import khan_scheme, naive_scheme, u_scheme
from repro.recovery.stats import compare_stats, scheme_stats


@pytest.fixture(scope="module")
def rdp7():
    return RdpCode(7)


class TestSchemeStats:
    def test_naive_has_no_overlap(self, rdp7):
        """The naive scheme uses each element exactly once."""
        s = scheme_stats(naive_scheme(rdp7, 0))
        assert s.overlap_factor == pytest.approx(1.0)
        assert s.reused_elements == 0

    def test_optimized_scheme_reuses_reads(self, rdp7):
        """The 25% saving comes from reading overlapping elements once and
        using them twice (Sec. II-B)."""
        s = scheme_stats(khan_scheme(rdp7, 0, depth=1))
        assert s.overlap_factor > 1.0
        assert s.reused_elements > 0

    def test_totals_match_scheme(self, rdp7):
        scheme = u_scheme(rdp7, 0, depth=1)
        s = scheme_stats(scheme)
        assert s.total_reads == scheme.total_reads
        assert s.max_load == scheme.max_load

    def test_naive_leaves_diagonal_parity_idle(self, rdp7):
        s = scheme_stats(naive_scheme(rdp7, 0))
        assert s.idle_disks == 1  # the untouched Q disk

    def test_balanced_scheme_uses_all_disks(self, rdp7):
        s = scheme_stats(u_scheme(rdp7, 0, depth=1))
        assert s.idle_disks == 0

    def test_touch_conservation(self, rdp7):
        """touches == sum of per-element counts >= unique reads."""
        s = scheme_stats(khan_scheme(rdp7, 0, depth=1))
        assert s.support_touches >= s.total_reads
        assert s.support_touches == pytest.approx(
            s.overlap_factor * s.total_reads
        )

    def test_failed_reuse_counts_iteration(self):
        """Schemes using earlier-recovered elements report failed_reuse."""
        from repro.codes import CauchyRSCode
        from repro.recovery import u_scheme as u

        code = CauchyRSCode(4, 2, w=4)
        stats = [scheme_stats(u(code, d, depth=1)) for d in range(4)]
        assert any(s.failed_reuse > 0 for s in stats)


class TestCompareTable:
    def test_table_contains_all_schemes(self, rdp7):
        table = compare_stats(
            {
                "naive": naive_scheme(rdp7, 0),
                "khan": khan_scheme(rdp7, 0, depth=1),
                "u": u_scheme(rdp7, 0, depth=1),
            }
        )
        assert "naive" in table and "khan" in table and "u" in table
        assert "overlap" in table
