"""Tests for arbitrary failure situations (Sec. V-D)."""

import pytest

from repro.codes import EvenOddCode, RdpCode, StarCode
from repro.recovery import recover_failure
from repro.recovery.multifailure import UnrecoverableError
from repro.codec import verify_scheme_on_random_data


class TestRecoverability:
    def test_empty_mask_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            recover_failure(RdpCode(5), 0)

    def test_three_disks_unrecoverable_in_raid6(self):
        code = RdpCode(5)
        mask = (
            code.layout.disk_mask(0)
            | code.layout.disk_mask(1)
            | code.layout.disk_mask(2)
        )
        with pytest.raises(UnrecoverableError):
            recover_failure(code, mask)

    def test_two_disks_recoverable_in_raid6(self):
        code = RdpCode(5)
        mask = code.layout.disk_mask(0) | code.layout.disk_mask(1)
        scheme = recover_failure(code, mask, algorithm="u")
        scheme.validate(code)
        assert verify_scheme_on_random_data(code, scheme, seed=3)

    def test_double_failure_star(self):
        code = StarCode(5)
        mask = code.layout.disk_mask(0) | code.layout.disk_mask(2)
        for alg in ("khan", "c", "u"):
            scheme = recover_failure(code, mask, algorithm=alg)
            scheme.validate(code)
            assert verify_scheme_on_random_data(code, scheme, seed=4)

    def test_triple_failure_star(self):
        code = StarCode(5)
        mask = (
            code.layout.disk_mask(0)
            | code.layout.disk_mask(1)
            | code.layout.disk_mask(4)
        )
        scheme = recover_failure(code, mask, algorithm="u", max_depth=4)
        scheme.validate(code)
        assert verify_scheme_on_random_data(code, scheme, seed=5)


class TestPartialFailures:
    def test_latent_sector_errors(self):
        """Scattered failed elements across several disks (Sec. V-D)."""
        code = EvenOddCode(5)
        lay = code.layout
        mask = lay.element_mask([(0, 0), (2, 3), (4, 1)])
        scheme = recover_failure(code, mask, algorithm="u")
        scheme.validate(code)
        assert verify_scheme_on_random_data(code, scheme, seed=6)

    def test_whole_disk_plus_sector(self):
        """Whole-disk failure combined with a latent sector error."""
        code = RdpCode(5)
        lay = code.layout
        mask = lay.disk_mask(1) | lay.element_mask([(3, 2)])
        scheme = recover_failure(code, mask, algorithm="c")
        scheme.validate(code)
        assert verify_scheme_on_random_data(code, scheme, seed=7)

    def test_unknown_algorithm(self):
        code = RdpCode(5)
        with pytest.raises(ValueError, match="unknown algorithm"):
            recover_failure(code, 1, algorithm="x")


class TestLoadBalanceInMultiFailure:
    def test_u_beats_khan_maxload_on_double_failure(self):
        code = StarCode(7)
        mask = code.layout.disk_mask(0) | code.layout.disk_mask(3)
        k = recover_failure(code, mask, algorithm="khan")
        u = recover_failure(code, mask, algorithm="u")
        assert u.max_load <= k.max_load

    def test_weighted_multifailure(self):
        code = StarCode(5)
        lay = code.layout
        mask = lay.disk_mask(0) | lay.disk_mask(1)
        weights = [1.0] * lay.n_disks
        weights[2] = 8.0
        scheme = recover_failure(code, mask, algorithm="u", weights=weights)
        scheme.validate(code)
        uniform = recover_failure(code, mask, algorithm="u")
        assert scheme.weighted_max_load(weights) <= uniform.weighted_max_load(weights)
