"""Parity-disk failure recovery — the situations Figures 3/4 omit.

The paper enumerates *user data* disks as virtual failures; parity disks
fail too, and the generators must handle them (the planner's
``all_disk_schemes`` does).  These tests pin that path per family.
"""

import pytest

from repro.codec import verify_scheme_on_random_data
from repro.codes import (
    BlaumRothCode,
    EvenOddCode,
    LiberationCode,
    RdpCode,
    StarCode,
)
from repro.recovery import c_scheme, khan_scheme, u_scheme

FAMILIES = [
    pytest.param(lambda: RdpCode(5), id="rdp"),
    pytest.param(lambda: EvenOddCode(5), id="evenodd"),
    pytest.param(lambda: BlaumRothCode(5), id="blaum-roth"),
    pytest.param(lambda: LiberationCode(5), id="liberation"),
    pytest.param(lambda: StarCode(5), id="star"),
]


@pytest.mark.parametrize("factory", FAMILIES)
class TestParityDiskFailure:
    def test_all_parity_disks_recover_byte_exact(self, factory):
        code = factory()
        for disk in code.layout.parity_disks:
            for fn in (khan_scheme, c_scheme, u_scheme):
                scheme = fn(code, disk, depth=1)
                scheme.validate(code)
                assert verify_scheme_on_random_data(code, scheme, seed=disk)

    def test_ordering_invariants_hold(self, factory):
        code = factory()
        for disk in code.layout.parity_disks:
            k = khan_scheme(code, disk, depth=1)
            c = c_scheme(code, disk, depth=1)
            u = u_scheme(code, disk, depth=1)
            assert c.total_reads == k.total_reads
            assert u.max_load <= c.max_load <= k.max_load

    def test_row_parity_rebuild_parity_usage(self, factory):
        """Rebuilding the row-parity disk: families whose diagonal
        equations exclude the P column (EVENODD and relatives) never read
        other parity disks; RDP's diagonals *include* P, so its minimum
        read may legitimately lean on Q."""
        code = factory()
        lay = code.layout
        p_disk = lay.n_data
        p_mask = lay.disk_mask(p_disk)
        scheme = khan_scheme(code, p_disk, depth=1)
        other_parity = 0
        for d in lay.parity_disks:
            if d != p_disk:
                other_parity |= lay.disk_mask(d)
        diag_eqs = code.parity_equations()[lay.k_rows :]
        diagonals_cover_p = any(eq & p_mask for eq in diag_eqs)
        if not diagonals_cover_p:
            assert scheme.read_mask & other_parity == 0
        else:
            assert code.name == "rdp"

    def test_parity_recovery_cost_at_most_naive(self, factory):
        """Khan on a parity disk reads at most what re-encoding would."""
        code = factory()
        lay = code.layout
        for disk in lay.parity_disks:
            scheme = khan_scheme(code, disk, depth=1)
            assert scheme.total_reads <= lay.n_data_elements
