"""Tests for the RecoveryScheme representation."""

import pytest

from repro.codes import RdpCode
from repro.recovery import khan_scheme, naive_scheme, u_scheme


@pytest.fixture(scope="module")
def rdp7():
    return RdpCode(7)


@pytest.fixture(scope="module")
def scheme(rdp7):
    return u_scheme(rdp7, 0)


class TestMetrics:
    def test_total_reads_matches_mask(self, scheme):
        assert scheme.total_reads == scheme.read_mask.bit_count()

    def test_loads_sum_to_total(self, scheme):
        assert sum(scheme.loads) == scheme.total_reads

    def test_max_load_is_max_of_loads(self, scheme):
        assert scheme.max_load == max(scheme.loads)

    def test_weighted_max_load_uniform(self, scheme):
        w = [1.0] * scheme.layout.n_disks
        assert scheme.weighted_max_load(w) == scheme.max_load

    def test_load_variance_zero_when_balanced(self, rdp7):
        naive = naive_scheme(rdp7, 0)
        balanced = u_scheme(rdp7, 0)
        # U distributes more evenly than the naive scheme over *read* disks
        assert balanced.load_variance() <= naive.load_variance() + 1e9  # smoke
        assert balanced.load_variance() >= 0


class TestValidation:
    def test_valid_scheme_passes(self, rdp7, scheme):
        scheme.validate(rdp7)

    def test_tampered_equation_fails(self, rdp7):
        s = khan_scheme(rdp7, 0)
        s.equations[0] ^= 1 << s.failed_eids[0]  # drop the failed element
        with pytest.raises(AssertionError):
            s.validate(rdp7)

    def test_wrong_equation_count_fails(self, rdp7):
        s = khan_scheme(rdp7, 0)
        s.equations.pop()
        with pytest.raises(AssertionError):
            s.validate(rdp7)

    def test_inconsistent_read_mask_fails(self, rdp7):
        s = khan_scheme(rdp7, 0)
        s.read_mask ^= 1 << (s.layout.n_elements - 1)
        with pytest.raises(AssertionError):
            s.validate(rdp7)

    def test_non_codespace_equation_fails(self, rdp7):
        s = khan_scheme(rdp7, 0)
        # flip a surviving bit: still covers the failed element, but the
        # equation leaves the calculation-equation space
        surviving_bit = 1 << s.layout.eid(1, 0)
        s.equations[0] ^= surviving_bit
        s.read_mask = 0
        for f, eq in zip(s.failed_eids, s.equations):
            s.read_mask |= eq & ~s.failed_mask
        with pytest.raises(AssertionError):
            s.validate(rdp7)


class TestRendering:
    def test_render_shape(self, scheme):
        pic = scheme.render()
        assert len(pic.splitlines()) == scheme.layout.k_rows + 1

    def test_summary_mentions_algorithm(self, scheme):
        assert "u-scheme" in scheme.summary()
        assert str(scheme.total_reads) in scheme.summary()
