"""Tests for degraded-read planning and service."""

import numpy as np
import pytest

from repro.codec import StripeCodec
from repro.codes import EvenOddCode, RdpCode
from repro.recovery import degraded_read_scheme, serve_degraded_read, u_scheme


@pytest.fixture(scope="module")
def rdp7():
    return RdpCode(7)


@pytest.fixture(scope="module")
def stripe(rdp7):
    codec = StripeCodec(rdp7, element_size=64)
    return codec.encode(codec.random_data(np.random.default_rng(5)))


class TestPlanning:
    def test_single_row(self, rdp7):
        s = degraded_read_scheme(rdp7, 0, rows=[2])
        assert s.failed_eids == [rdp7.layout.eid(0, 2)]
        s.validate(rdp7)

    def test_subset_cheaper_than_full_disk(self, rdp7):
        full = u_scheme(rdp7, 0, depth=1)
        partial = degraded_read_scheme(rdp7, 0, rows=[0, 1])
        assert partial.total_reads < full.total_reads
        assert partial.max_load <= full.max_load

    def test_no_rows_rejected(self, rdp7):
        with pytest.raises(ValueError, match="no rows"):
            degraded_read_scheme(rdp7, 0, rows=[])

    def test_never_reads_failed_disk(self, rdp7):
        s = degraded_read_scheme(rdp7, 1, rows=[3, 4])
        assert s.read_mask & rdp7.layout.disk_mask(1) == 0

    def test_multiple_rows_ordered(self, rdp7):
        s = degraded_read_scheme(rdp7, 0, rows=[5, 0, 3])
        assert s.failed_eids == sorted(s.failed_eids)
        assert len(s.failed_eids) == 3

    def test_khan_mode(self, rdp7):
        u = degraded_read_scheme(rdp7, 0, rows=[1], algorithm="u")
        k = degraded_read_scheme(rdp7, 0, rows=[1], algorithm="khan")
        assert k.total_reads <= u.total_reads


class TestService:
    def test_served_bytes_exact(self, rdp7, stripe):
        for rows in ([0], [2, 4], [0, 1, 5]):
            scheme = degraded_read_scheme(rdp7, 0, rows=rows)
            out = serve_degraded_read(rdp7, scheme, stripe)
            for row in rows:
                eid = rdp7.layout.eid(0, row)
                assert np.array_equal(out[eid], stripe[eid])

    def test_evenodd_service(self):
        code = EvenOddCode(5)
        codec = StripeCodec(code, element_size=32)
        stripe = codec.encode(codec.random_data(np.random.default_rng(6)))
        scheme = degraded_read_scheme(code, 2, rows=[1, 3])
        out = serve_degraded_read(code, scheme, stripe)
        for row in (1, 3):
            eid = code.layout.eid(2, row)
            assert np.array_equal(out[eid], stripe[eid])
