"""SchemePlanCache: hit equivalence, key invalidation, corruption handling."""

import json

import pytest

from repro import obs
from repro.codes import make_code
from repro.recovery import RecoveryPlanner, SchemePlanCache, plan_key
from repro.recovery.ualgorithm import u_scheme


class TestPlanKey:
    def test_deterministic(self):
        code = make_code("rdp", 7)
        assert plan_key(code, 0, "u", 1) == plan_key(code, 0, "u", 1)

    def test_every_component_changes_key(self):
        rdp = make_code("rdp", 7)
        base = plan_key(rdp, 0, "u", 1)
        assert plan_key(rdp, 1, "u", 1) != base           # failed disk
        assert plan_key(rdp, 0, "c", 1) != base           # algorithm
        assert plan_key(rdp, 0, "u", 2) != base           # depth
        assert plan_key(rdp, 0, "u", 1, 1000) != base     # budget
        assert plan_key(make_code("rdp", 8), 0, "u", 1) != base   # geometry
        assert plan_key(make_code("evenodd", 7), 0, "u", 1) != base  # matrix


class TestCacheHitEquivalence:
    def test_hit_equals_fresh_search(self, tmp_path):
        code = make_code("evenodd", 7)
        cache = SchemePlanCache(tmp_path / "plans.json")
        planner = RecoveryPlanner(code, algorithm="u", depth=1,
                                  plan_cache=cache)
        stored = planner.all_disk_schemes()
        # a fresh planner over the same store must serve identical plans
        warm = RecoveryPlanner(
            code, algorithm="u", depth=1,
            plan_cache=SchemePlanCache(tmp_path / "plans.json"),
        )
        for disk, cold in enumerate(stored):
            fresh = u_scheme(code, disk, depth=1)
            hit = warm.scheme_for_disk(disk)
            assert hit.metadata.get("plan_cache") == "hit"
            for scheme in (fresh, hit):
                assert scheme.equations == cold.equations
                assert scheme.read_mask == cold.read_mask
                assert scheme.failed_eids == cold.failed_eids
            hit.validate(code)

    def test_generator_change_invalidates_by_key(self, tmp_path):
        store = tmp_path / "plans.json"
        rdp = RecoveryPlanner(
            make_code("rdp", 7), algorithm="u", depth=1,
            plan_cache=SchemePlanCache(store),
        )
        rdp.all_disk_schemes()
        # same geometry, different generator matrix -> all misses
        cache = SchemePlanCache(store)
        evenodd = RecoveryPlanner(
            make_code("evenodd", 7), algorithm="u", depth=1, plan_cache=cache
        )
        evenodd.all_disk_schemes()
        assert cache.hits == 0
        assert cache.misses == make_code("evenodd", 7).layout.n_disks

    def test_memory_lru_bound(self):
        code = make_code("rdp", 7)
        cache = SchemePlanCache(max_entries=2)
        planner = RecoveryPlanner(code, algorithm="u", depth=1,
                                  plan_cache=cache)
        planner.all_disk_schemes()
        assert len(cache) == 2
        with pytest.raises(ValueError):
            SchemePlanCache(max_entries=0)

    def test_parallel_generation_fills_cache(self, tmp_path):
        code = make_code("rdp", 7)
        cache = SchemePlanCache(tmp_path / "plans.json")
        planner = RecoveryPlanner(code, algorithm="u", depth=1,
                                  plan_cache=cache)
        planner.generate_all_parallel(workers=2)
        assert cache.stats()["disk_entries"] == code.layout.n_disks
        # second parallel pass over a fresh planner is all cache hits
        cache2 = SchemePlanCache(tmp_path / "plans.json")
        planner2 = RecoveryPlanner(code, algorithm="u", depth=1,
                                   plan_cache=cache2)
        planner2.generate_all_parallel(workers=2)
        assert cache2.hits == code.layout.n_disks
        assert cache2.misses == 0


class TestCorruptedStores:
    @pytest.mark.parametrize("content", [
        "{not json",                                      # unparsable
        json.dumps([1, 2, 3]),                            # wrong root type
        json.dumps({"version": 999, "plans": {}}),        # wrong version
        json.dumps({"version": 1}),                       # missing plans
        json.dumps({"version": 1, "plans": {"k": {"x": 1}}}),  # bad record
    ])
    def test_corrupted_store_warns_never_raises(self, tmp_path, content):
        store = tmp_path / "plans.json"
        store.write_text(content)
        with pytest.warns(UserWarning, match="ignoring unusable plan cache"):
            cache = SchemePlanCache(store)
        # degraded to cold but fully functional
        code = make_code("rdp", 7)
        planner = RecoveryPlanner(code, algorithm="u", depth=1,
                                  plan_cache=cache)
        scheme = planner.scheme_for_disk(0)
        scheme.validate(code)
        assert cache.misses == 1 and cache.stores == 1

    def test_corrupt_store_is_rewritten_clean(self, tmp_path):
        store = tmp_path / "plans.json"
        store.write_text("garbage")
        code = make_code("rdp", 7)
        with pytest.warns(UserWarning):
            cache = SchemePlanCache(store)
        RecoveryPlanner(code, algorithm="u", depth=1,
                        plan_cache=cache).scheme_for_disk(0)
        reloaded = json.loads(store.read_text())
        assert reloaded["version"] == 1
        assert len(reloaded["plans"]) == 1

    def test_missing_store_starts_cold_silently(self, tmp_path):
        cache = SchemePlanCache(tmp_path / "absent.json")
        assert cache.stats()["disk_entries"] == 0


class TestObsCounters:
    def test_warm_run_skips_search_entirely(self, tmp_path):
        code = make_code("rdp", 7)
        store = tmp_path / "plans.json"
        RecoveryPlanner(
            code, algorithm="u", depth=1, plan_cache=SchemePlanCache(store)
        ).all_disk_schemes()

        rec = obs.enable(label="warm")
        try:
            planner = RecoveryPlanner(
                code, algorithm="u", depth=1,
                plan_cache=SchemePlanCache(store),
            )
            planner.all_disk_schemes()
        finally:
            obs.disable()
        counters = {c.name: c.value for c in rec.counters.values()}
        assert counters.get("plancache.hit", 0) == code.layout.n_disks
        assert counters.get("planner.schemes_generated", 0) == 0
        assert counters.get("search.expanded", 0) == 0
        assert rec.gauges["plancache.size"].value == code.layout.n_disks


class TestConcurrentWriters:
    """Two processes/instances saving to one store must union, not clobber."""

    def test_two_writer_interleave_preserves_both(self, tmp_path):
        """Regression: before the advisory-lock merge, writer B's save
        (holding a stale in-memory view loaded before A's save) erased
        A's entry from the store."""
        code = make_code("rdp", 7)
        store = tmp_path / "plans.json"
        a = SchemePlanCache(store)   # both load the (empty) store now
        b = SchemePlanCache(store)
        a.put(code, 0, "u", 1, u_scheme(code, 0, depth=1))   # A saves disk 0
        b.put(code, 1, "u", 1, u_scheme(code, 1, depth=1))   # B saves disk 1
        merged = SchemePlanCache(store)
        assert merged.stats()["disk_entries"] == 2
        assert merged.get(code, 0, "u", 1) is not None
        assert merged.get(code, 1, "u", 1) is not None

    def test_threaded_writer_hammer_loses_nothing(self, tmp_path):
        import threading

        code = make_code("rdp", 8)
        store = tmp_path / "plans.json"
        n_disks = code.layout.n_disks
        schemes = {d: u_scheme(code, d, depth=1) for d in range(n_disks)}

        def writer(disk):
            cache = SchemePlanCache(store)
            cache.put(code, disk, "u", 1, schemes[disk])

        threads = [
            threading.Thread(target=writer, args=(d,)) for d in range(n_disks)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        merged = SchemePlanCache(store)
        assert merged.stats()["disk_entries"] == n_disks
        for d in range(n_disks):
            assert merged.get(code, d, "u", 1) is not None

    def test_save_merges_and_local_wins_collisions(self, tmp_path):
        code = make_code("rdp", 7)
        store = tmp_path / "plans.json"
        a = SchemePlanCache(store, autosave=False)
        b = SchemePlanCache(store, autosave=False)
        a.put(code, 0, "u", 1, u_scheme(code, 0, depth=1))
        b.put(code, 0, "u", 1, u_scheme(code, 0, depth=1))  # same key
        b.put(code, 2, "u", 1, u_scheme(code, 2, depth=1))
        a.save()
        b.save()
        merged = SchemePlanCache(store)
        assert merged.stats()["disk_entries"] == 2

    def test_lock_sidecar_does_not_break_reload(self, tmp_path):
        code = make_code("rdp", 7)
        store = tmp_path / "plans.json"
        cache = SchemePlanCache(store)
        cache.put(code, 0, "u", 1, u_scheme(code, 0, depth=1))
        assert (tmp_path / "plans.json.lock").exists()
        assert SchemePlanCache(store).get(code, 0, "u", 1) is not None
