"""Tests for the unified UCS engine and cost functions."""

import pytest

from repro.codes import CodeLayout, RdpCode, make_code
from repro.equations import get_recovery_equations
from repro.equations.enumerate import EquationOption, RecoveryEquations
from repro.recovery import ckernel
from repro.recovery.search import (
    SearchStats,
    conditional_cost,
    generate_scheme,
    khan_cost,
    unconditional_cost,
    weighted_cost,
)


def tiny_problem():
    """Two failed elements on a 4-disk, 2-row layout with hand-built options.

    Slot 0: either read disk1 rows {0,1} (2 reads, concentrated) or read
    disk1 row 0 + disk2 row 0 (2 reads, spread).
    Slot 1: read disk3 row 1 (1 read).
    The spread choice yields max load 1; the concentrated one max load 2;
    both read 3 elements in total.
    """
    lay = CodeLayout(3, 1, 2)

    def m(*pairs):
        return lay.element_mask(pairs)

    failed = lay.disk_mask(0)
    # equations carry the failed bit; read mask excludes it
    opt_a = EquationOption(m((1, 0), (1, 1)), m((0, 0), (1, 0), (1, 1)))
    opt_b = EquationOption(m((1, 0), (2, 0)), m((0, 0), (1, 0), (2, 0)))
    opt_c = EquationOption(m((3, 1)), m((0, 1), (3, 1)))
    return lay, RecoveryEquations(
        layout=lay,
        failed_mask=failed,
        failed_eids=[lay.eid(0, 0), lay.eid(0, 1)],
        options=[[opt_a, opt_b], [opt_c]],
        depth=1,
    )


class TestCostFunctions:
    def test_khan_cost_counts_total(self):
        lay = CodeLayout(2, 1, 2)
        assert khan_cost(lay)(0b1011) == (3,)

    def test_conditional_orders_total_first(self):
        lay = CodeLayout(2, 1, 2)
        key = conditional_cost(lay)
        assert key(lay.disk_mask(0)) == (2, 2)

    def test_unconditional_orders_maxload_first(self):
        lay = CodeLayout(2, 1, 2)
        key = unconditional_cost(lay)
        assert key(lay.disk_mask(0)) == (2, 2)
        spread = lay.element_mask([(0, 0), (1, 0)])
        assert key(spread) == (1, 2)

    def test_weighted_cost_validates_length(self):
        lay = CodeLayout(2, 1, 2)
        with pytest.raises(ValueError):
            weighted_cost(lay, [1.0])

    def test_weighted_cost_scales(self):
        lay = CodeLayout(2, 1, 2)  # 3 disks total
        key = weighted_cost(lay, [1.0, 5.0, 1.0])
        mask = lay.element_mask([(1, 0)])
        assert key(mask) == (5.0, 5.0)


class TestEngine:
    def test_khan_picks_min_total(self):
        lay, rec = tiny_problem()
        s = generate_scheme(rec, khan_cost(lay), "khan")
        assert s.total_reads == 3

    def test_unconditional_prefers_spread(self):
        lay, rec = tiny_problem()
        s = generate_scheme(rec, unconditional_cost(lay), "u")
        assert s.max_load == 1
        assert s.loads == [0, 1, 1, 1]

    def test_conditional_total_equals_khan(self):
        lay, rec = tiny_problem()
        k = generate_scheme(rec, khan_cost(lay), "khan")
        c = generate_scheme(rec, conditional_cost(lay), "c")
        assert c.total_reads == k.total_reads
        assert c.max_load <= k.max_load

    def test_missing_options_raises(self):
        lay, rec = tiny_problem()
        rec.options[1] = []
        with pytest.raises(ValueError, match="no recovery equations"):
            generate_scheme(rec, khan_cost(lay), "khan")

    def test_stats_recorded_on_scheme(self):
        lay, rec = tiny_problem()
        s = generate_scheme(rec, khan_cost(lay), "khan")
        assert s.expanded_states >= 1
        assert s.exact

    def test_budget_triggers_greedy_completion(self):
        code = RdpCode(7)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        s = generate_scheme(rec, khan_cost(code.layout), "khan", max_expansions=2)
        assert not s.exact
        assert len(s.equations) == rec.n_failed
        s.validate(code)

    def test_budget_greedy_not_far_from_exact(self):
        code = RdpCode(7)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        exact = generate_scheme(rec, khan_cost(code.layout), "khan")
        budgeted = generate_scheme(
            rec, khan_cost(code.layout), "khan", max_expansions=5
        )
        assert budgeted.total_reads <= exact.total_reads * 2

    def test_dominance_pruning_preserves_optimality(self):
        code = RdpCode(7)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        plain = generate_scheme(rec, conditional_cost(code.layout), "c")
        pruned = generate_scheme(
            rec, conditional_cost(code.layout), "c", dominance_limit=256
        )
        assert (plain.total_reads, plain.max_load) == (
            pruned.total_reads,
            pruned.max_load,
        )

    def test_lexicographic_optimality_vs_bruteforce(self):
        """Exhaustively enumerate all option combinations on a small code and
        confirm UCS returns the lexicographic optimum for each cost."""
        import itertools

        code = RdpCode(5)
        lay = code.layout
        rec = get_recovery_equations(code, lay.disk_mask(0), depth=1)
        combos = itertools.product(*rec.options)
        best_khan = None
        best_c = None
        best_u = None
        for combo in combos:
            mask = 0
            for opt in combo:
                mask |= opt.read_mask
            total, maxl = mask.bit_count(), lay.max_load(mask)
            best_khan = min(best_khan, (total,)) if best_khan else (total,)
            best_c = min(best_c, (total, maxl)) if best_c else (total, maxl)
            best_u = min(best_u, (maxl, total)) if best_u else (maxl, total)
        k = generate_scheme(rec, khan_cost(lay), "khan")
        c = generate_scheme(rec, conditional_cost(lay), "c")
        u = generate_scheme(rec, unconditional_cost(lay), "u")
        assert (k.total_reads,) == best_khan
        assert (c.total_reads, c.max_load) == best_c
        assert (u.max_load, u.total_reads) == best_u


class TestIncrementalCostModels:
    """The incremental extend() path must agree with key_of_mask()."""

    @pytest.mark.parametrize(
        "factory", [khan_cost, conditional_cost, unconditional_cost]
    )
    def test_extend_consistent_with_key_of_mask(self, factory):
        lay = CodeLayout(4, 2, 3)
        model = factory(lay)
        masks = [
            0b101,
            0b110001,
            0b111000111,
            lay.disk_mask(3),
            lay.disk_mask(1) | 0b1,
            lay.element_mask([(0, 0), (1, 0), (2, 0), (5, 2)]),
        ]

        def internal_key(mask):
            # fold bit by bit — a different increment order than one shot
            state, key = model.initial()
            seen = 0
            while mask:
                low = mask & -mask
                mask ^= low
                seen |= low
                state, key = model.extend(state, low, seen)
            return key

        # incremental keys must be path-independent...
        for m in masks:
            state0, _ = model.initial()
            _, one_shot = model.extend(state0, m, m)
            assert internal_key(m) == one_shot
        # ...and order masks exactly as the public lexicographic key does
        by_internal = sorted(masks, key=internal_key)
        by_public = sorted(masks, key=model.key_of_mask)
        assert [model.key_of_mask(m) for m in by_internal] == [
            model.key_of_mask(m) for m in by_public
        ]

    def test_weighted_extend_matches_fold(self):
        lay = CodeLayout(3, 1, 2)
        model = weighted_cost(lay, [1.0, 2.0, 0.5, 3.0])
        mask = lay.element_mask([(0, 0), (1, 0), (1, 1), (3, 1)])
        state, key = model.initial()
        state, key = model.extend(state, mask, mask)
        assert key == model.key_of_mask(mask)


class TestSearchStatsMetadata:
    def test_scheme_carries_populated_stats(self):
        code = RdpCode(7)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        s = generate_scheme(rec, conditional_cost(code.layout), "c")
        stats = s.search_stats
        assert stats is not None
        assert stats["algorithm"] == "c"
        assert stats["expanded"] >= 1
        assert stats["pushed"] >= stats["expanded"]
        assert stats["peak_frontier"] >= 1
        assert stats["wall_time_s"] > 0
        assert s.expanded_states == stats["expanded"]

    def test_stats_summary_renders(self):
        stats = SearchStats(algorithm="u", expanded=10, pushed=20)
        text = stats.summary()
        assert "expanded=10" in text and "pushed=20" in text

    def test_stats_serialise_with_plan(self, tmp_path):
        from repro.recovery.planner import RecoveryPlanner

        code = RdpCode(5)
        planner = RecoveryPlanner(code, "u", depth=1)
        planner.scheme_for_disk(0)
        path = tmp_path / "plan.json"
        planner.save(path)
        fresh = RecoveryPlanner(code, "u", depth=1)
        assert fresh.load(path) == 1
        assert fresh.scheme_for_disk(0).search_stats is not None


class TestCompiledKernel:
    """The C kernel must be bit-for-bit equivalent to the Python engine."""

    @pytest.fixture(autouse=True)
    def _require_kernel(self):
        if not ckernel.available():
            pytest.skip("no C compiler available; pure-Python mode")

    @pytest.mark.parametrize("family,n", [("rdp", 9), ("evenodd", 8), ("star", 8)])
    @pytest.mark.parametrize(
        "factory,alg",
        [(khan_cost, "khan"), (conditional_cost, "c"), (unconditional_cost, "u")],
    )
    def test_matches_pure_python(self, monkeypatch, family, n, factory, alg):
        import repro.recovery.search as search_mod

        code = make_code(family, n)
        lay = code.layout
        rec = get_recovery_equations(code, lay.disk_mask(0), depth=1)
        # force the kernel even below the size heuristic so small, fast
        # codes still exercise it
        monkeypatch.setattr(search_mod, "_worth_ckernel", lambda _s: True)
        compiled = generate_scheme(rec, factory(lay), alg)
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        monkeypatch.setattr(ckernel, "_lib", None)
        monkeypatch.setattr(ckernel, "_load_attempted", True)
        pure = generate_scheme(rec, factory(lay), alg)
        monkeypatch.setattr(ckernel, "_load_attempted", False)
        assert compiled.read_mask == pure.read_mask
        assert compiled.equations == pure.equations
        cs, ps = compiled.search_stats, pure.search_stats
        for field in ("expanded", "pushed", "pruned_closed", "peak_frontier"):
            assert cs[field] == ps[field], field
