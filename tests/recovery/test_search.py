"""Tests for the unified UCS engine and cost functions."""

import pytest

from repro.codes import CodeLayout, RdpCode
from repro.equations import get_recovery_equations
from repro.equations.enumerate import EquationOption, RecoveryEquations
from repro.recovery.search import (
    SearchStats,
    conditional_cost,
    generate_scheme,
    khan_cost,
    unconditional_cost,
    weighted_cost,
)


def tiny_problem():
    """Two failed elements on a 4-disk, 2-row layout with hand-built options.

    Slot 0: either read disk1 rows {0,1} (2 reads, concentrated) or read
    disk1 row 0 + disk2 row 0 (2 reads, spread).
    Slot 1: read disk3 row 1 (1 read).
    The spread choice yields max load 1; the concentrated one max load 2;
    both read 3 elements in total.
    """
    lay = CodeLayout(3, 1, 2)

    def m(*pairs):
        return lay.element_mask(pairs)

    failed = lay.disk_mask(0)
    # equations carry the failed bit; read mask excludes it
    opt_a = EquationOption(m((1, 0), (1, 1)), m((0, 0), (1, 0), (1, 1)))
    opt_b = EquationOption(m((1, 0), (2, 0)), m((0, 0), (1, 0), (2, 0)))
    opt_c = EquationOption(m((3, 1)), m((0, 1), (3, 1)))
    return lay, RecoveryEquations(
        layout=lay,
        failed_mask=failed,
        failed_eids=[lay.eid(0, 0), lay.eid(0, 1)],
        options=[[opt_a, opt_b], [opt_c]],
        depth=1,
    )


class TestCostFunctions:
    def test_khan_cost_counts_total(self):
        lay = CodeLayout(2, 1, 2)
        assert khan_cost(lay)(0b1011) == (3,)

    def test_conditional_orders_total_first(self):
        lay = CodeLayout(2, 1, 2)
        key = conditional_cost(lay)
        assert key(lay.disk_mask(0)) == (2, 2)

    def test_unconditional_orders_maxload_first(self):
        lay = CodeLayout(2, 1, 2)
        key = unconditional_cost(lay)
        assert key(lay.disk_mask(0)) == (2, 2)
        spread = lay.element_mask([(0, 0), (1, 0)])
        assert key(spread) == (1, 2)

    def test_weighted_cost_validates_length(self):
        lay = CodeLayout(2, 1, 2)
        with pytest.raises(ValueError):
            weighted_cost(lay, [1.0])

    def test_weighted_cost_scales(self):
        lay = CodeLayout(2, 1, 2)  # 3 disks total
        key = weighted_cost(lay, [1.0, 5.0, 1.0])
        mask = lay.element_mask([(1, 0)])
        assert key(mask) == (5.0, 5.0)


class TestEngine:
    def test_khan_picks_min_total(self):
        lay, rec = tiny_problem()
        s = generate_scheme(rec, khan_cost(lay), "khan")
        assert s.total_reads == 3

    def test_unconditional_prefers_spread(self):
        lay, rec = tiny_problem()
        s = generate_scheme(rec, unconditional_cost(lay), "u")
        assert s.max_load == 1
        assert s.loads == [0, 1, 1, 1]

    def test_conditional_total_equals_khan(self):
        lay, rec = tiny_problem()
        k = generate_scheme(rec, khan_cost(lay), "khan")
        c = generate_scheme(rec, conditional_cost(lay), "c")
        assert c.total_reads == k.total_reads
        assert c.max_load <= k.max_load

    def test_missing_options_raises(self):
        lay, rec = tiny_problem()
        rec.options[1] = []
        with pytest.raises(ValueError, match="no recovery equations"):
            generate_scheme(rec, khan_cost(lay), "khan")

    def test_stats_recorded_on_scheme(self):
        lay, rec = tiny_problem()
        s = generate_scheme(rec, khan_cost(lay), "khan")
        assert s.expanded_states >= 1
        assert s.exact

    def test_budget_triggers_greedy_completion(self):
        code = RdpCode(7)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        s = generate_scheme(rec, khan_cost(code.layout), "khan", max_expansions=2)
        assert not s.exact
        assert len(s.equations) == rec.n_failed
        s.validate(code)

    def test_budget_greedy_not_far_from_exact(self):
        code = RdpCode(7)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        exact = generate_scheme(rec, khan_cost(code.layout), "khan")
        budgeted = generate_scheme(
            rec, khan_cost(code.layout), "khan", max_expansions=5
        )
        assert budgeted.total_reads <= exact.total_reads * 2

    def test_dominance_pruning_preserves_optimality(self):
        code = RdpCode(7)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        plain = generate_scheme(rec, conditional_cost(code.layout), "c")
        pruned = generate_scheme(
            rec, conditional_cost(code.layout), "c", dominance_limit=256
        )
        assert (plain.total_reads, plain.max_load) == (
            pruned.total_reads,
            pruned.max_load,
        )

    def test_lexicographic_optimality_vs_bruteforce(self):
        """Exhaustively enumerate all option combinations on a small code and
        confirm UCS returns the lexicographic optimum for each cost."""
        import itertools

        code = RdpCode(5)
        lay = code.layout
        rec = get_recovery_equations(code, lay.disk_mask(0), depth=1)
        combos = itertools.product(*rec.options)
        best_khan = None
        best_c = None
        best_u = None
        for combo in combos:
            mask = 0
            for opt in combo:
                mask |= opt.read_mask
            total, maxl = mask.bit_count(), lay.max_load(mask)
            best_khan = min(best_khan, (total,)) if best_khan else (total,)
            best_c = min(best_c, (total, maxl)) if best_c else (total, maxl)
            best_u = min(best_u, (maxl, total)) if best_u else (maxl, total)
        k = generate_scheme(rec, khan_cost(lay), "khan")
        c = generate_scheme(rec, conditional_cost(lay), "c")
        u = generate_scheme(rec, unconditional_cost(lay), "u")
        assert (k.total_reads,) == best_khan
        assert (c.total_reads, c.max_load) == best_c
        assert (u.max_load, u.total_reads) == best_u
