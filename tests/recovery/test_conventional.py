"""Conventional repair baseline: locality -> naive -> generic elimination."""

import pytest

from repro.codes import AzureLrcCode, MdrCode, make_code
from repro.recovery import (
    ALGORITHMS,
    RecoveryPlanner,
    conventional_scheme,
    conventional_scheme_for_mask,
    naive_scheme,
    scheme_for_disk,
)


class TestRouting:
    def test_locality_code_uses_group_equations(self):
        code = AzureLrcCode(6, l_groups=2, g_global=2, w=4)
        scheme = conventional_scheme(code, 0)
        assert scheme.algorithm == "conventional"
        assert scheme.metadata["source"] == "locality"

    def test_plain_code_uses_naive_path(self):
        code = make_code("rdp", 8)
        scheme = conventional_scheme(code, 0)
        assert scheme.algorithm == "conventional"
        assert scheme.metadata["source"] == "naive"
        # identical read pattern to the naive baseline, rebadged
        assert scheme.read_mask == naive_scheme(code, 0).read_mask

    def test_double_failure_falls_back_to_generic_elimination(self):
        """Two failed data disks share every row parity, so the naive
        first-parity heuristic fails; the generic GF(2) elimination over
        all originals must take over and still produce a valid plan."""
        code = make_code("rdp", 8)
        lay = code.layout
        mask = lay.disk_mask(0) | lay.disk_mask(1)
        scheme = conventional_scheme_for_mask(code, mask)
        scheme.validate(code)
        assert scheme.metadata["source"] == "generic"

    def test_every_registry_family_covered(self):
        for family in ("evenodd", "liberation", "xcode", "lrc", "xorbas", "mdr"):
            code = make_code(family, 8 if family != "xcode" else 7)
            for disk in range(code.layout.n_disks):
                conventional_scheme(code, disk).validate(code)


class TestMaskVariant:
    def test_mask_variant_matches_disk_variant(self):
        code = make_code("evenodd", 8)
        mask = code.layout.disk_mask(2)
        a = conventional_scheme(code, 2)
        b = conventional_scheme_for_mask(code, mask, failed_disk=2)
        assert a.read_mask == b.read_mask

    def test_unrecoverable_mask_raises(self):
        code = MdrCode(3)  # tolerates 2 failures
        lay = code.layout
        mask = lay.disk_mask(0) | lay.disk_mask(1) | lay.disk_mask(2)
        with pytest.raises(ValueError):
            conventional_scheme_for_mask(code, mask)


class TestIntegration:
    def test_registered_in_algorithms(self):
        assert ALGORITHMS["conventional"] is conventional_scheme

    def test_scheme_for_disk_dispatch(self):
        code = make_code("rdp", 8)
        scheme = scheme_for_disk(code, 1, algorithm="conventional")
        assert scheme.algorithm == "conventional"
        scheme.validate(code)

    def test_planner_accepts_conventional(self):
        code = AzureLrcCode(6, l_groups=2, g_global=2, w=4)
        planner = RecoveryPlanner(code, algorithm="conventional")
        for disk in range(code.layout.n_disks):
            scheme = planner.scheme_for_disk(disk)
            assert scheme.algorithm == "conventional"
            scheme.validate(code)

    def test_u_never_worse_than_conventional_on_lrc(self):
        """The paper's point: the balanced U-scheme beats the industrial
        local repair on max per-disk load (here on Azure-LRC)."""
        from repro.recovery import u_scheme

        code = make_code("lrc", 12)
        for disk in range(code.layout.n_data):
            conv = conventional_scheme(code, disk)
            bal = u_scheme(code, disk)
            assert bal.max_load <= conv.max_load
