"""Tests for Get_Rec_Equ (recovery equation enumeration)."""

import pytest

from repro.codes import EvenOddCode, Raid4Code, RdpCode, StarCode
from repro.equations import (
    exhaustive_recovery_equations,
    get_recovery_equations,
)


class TestBasicEnumeration:
    def test_raid4_single_option_per_element(self):
        code = Raid4Code(3, k_rows=2)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        assert rec.n_failed == 2
        # each failed element has exactly its row equation
        for opts in rec.options:
            assert len(opts) == 1
        rec.validate()

    def test_rdp_two_options_depth1_mostly(self):
        code = RdpCode(5)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        rec.validate()
        assert rec.is_complete()
        # each failed element has a row equation and possibly a diagonal one
        for opts in rec.options:
            assert 1 <= len(opts) <= 2

    def test_failed_eids_sorted(self):
        code = RdpCode(5)
        rec = get_recovery_equations(code, code.layout.disk_mask(1), depth=1)
        assert rec.failed_eids == sorted(rec.failed_eids)

    def test_read_masks_exclude_failed(self):
        code = EvenOddCode(5)
        failed = code.layout.disk_mask(0)
        rec = get_recovery_equations(code, failed, depth=2)
        for opts in rec.options:
            for opt in opts:
                assert opt.read_mask & failed == 0

    def test_iteration_equations_allowed(self):
        """Equations touching earlier failed elements must appear for later
        slots (Greenan's iteration)."""
        code = RdpCode(5)
        failed = code.layout.disk_mask(0)
        rec = get_recovery_equations(code, failed, depth=2)
        touching_earlier = 0
        recovered = 0
        for i, f in enumerate(rec.failed_eids):
            for opt in rec.options[i]:
                if opt.equation & failed & recovered:
                    touching_earlier += 1
            recovered |= 1 << f
        assert touching_earlier > 0

    def test_max_options_cap(self):
        code = StarCode(5)
        rec = get_recovery_equations(
            code, code.layout.disk_mask(0), depth=2, max_options_per_element=2
        )
        assert all(len(opts) <= 2 for opts in rec.options)

    def test_dominated_options_pruned(self):
        code = RdpCode(5)
        rec = get_recovery_equations(code, code.layout.disk_mask(0), depth=3)
        for opts in rec.options:
            for a in opts:
                for b in opts:
                    if a is not b:
                        assert not (
                            a.read_mask & b.read_mask == a.read_mask
                        ), "superset read mask survived pruning"


class TestExhaustive:
    def test_matches_bounded_on_small_code(self):
        """Full row-space enumeration finds nothing cheaper than depth-3 on
        the smallest RDP instance."""
        code = RdpCode(5)
        failed = code.layout.disk_mask(0)
        bounded = get_recovery_equations(code, failed, depth=3)
        full = exhaustive_recovery_equations(code, failed)
        for slot in range(bounded.n_failed):
            best_bounded = min(o.read_mask.bit_count() for o in bounded.options[slot])
            best_full = min(o.read_mask.bit_count() for o in full.options[slot])
            assert best_bounded == best_full

    def test_space_limit_guard(self):
        code = RdpCode(13)
        with pytest.raises(ValueError, match="over the limit"):
            exhaustive_recovery_equations(code, code.layout.disk_mask(0), space_limit=4)

    def test_exhaustive_validates(self):
        code = Raid4Code(3, k_rows=2)
        rec = exhaustive_recovery_equations(code, code.layout.disk_mask(1))
        rec.validate()
        assert rec.is_complete()


class TestMultiElementMasks:
    def test_partial_disk_failure(self):
        """A failure mask smaller than a disk works (latent sector errors)."""
        code = RdpCode(5)
        lay = code.layout
        failed = lay.element_mask([(0, 0), (2, 3)])
        rec = get_recovery_equations(code, failed, depth=2)
        rec.validate()
        assert rec.is_complete()
        assert rec.n_failed == 2

    def test_two_disk_failure_star(self):
        code = StarCode(5)
        failed = code.layout.disk_mask(0) | code.layout.disk_mask(1)
        rec = get_recovery_equations(code, failed, depth=3)
        rec.validate()
        # completeness may require the search; at least some slots have options
        assert any(rec.options)


class TestMemoization:
    """get_recovery_equations is cached; hits must be mutation-safe copies."""

    def test_repeat_call_returns_equal_but_distinct_lists(self):
        from repro.equations import clear_enumeration_caches

        clear_enumeration_caches()
        code = RdpCode(7)
        failed = code.layout.disk_mask(0)
        first = get_recovery_equations(code, failed, depth=1)
        second = get_recovery_equations(code, failed, depth=1)
        assert first.options == second.options
        assert first.options is not second.options
        for a, b in zip(first.options, second.options):
            assert a is not b

    def test_caller_mutation_does_not_poison_cache(self):
        """Degraded reads / escalation rotate and filter option lists in
        place — a later call must still see the full enumeration."""
        code = RdpCode(7)
        failed = code.layout.disk_mask(0)
        rec = get_recovery_equations(code, failed, depth=1)
        pristine = [list(opts) for opts in rec.options]
        rec.options[0].clear()
        rec.options[1].reverse()
        fresh = get_recovery_equations(code, failed, depth=1)
        assert fresh.options == pristine

    def test_clear_enumeration_caches_forces_recompute(self):
        from repro.equations import clear_enumeration_caches
        from repro.equations import enumerate as enum_mod

        code = RdpCode(5)
        failed = code.layout.disk_mask(1)
        get_recovery_equations(code, failed, depth=1)
        assert enum_mod._ENUM_CACHE
        clear_enumeration_caches()
        assert not enum_mod._ENUM_CACHE
        assert not enum_mod._CLOSURE_CACHE
        rec = get_recovery_equations(code, failed, depth=1)
        rec.validate()


class TestCacheBounds:
    """The memoization LRUs are bounded, configurable and observable."""

    def setup_method(self):
        from repro.equations import clear_enumeration_caches

        clear_enumeration_caches()

    def teardown_method(self):
        from repro.equations import (
            clear_enumeration_caches,
            set_enumeration_cache_limits,
        )

        clear_enumeration_caches()
        set_enumeration_cache_limits(enum=256, closure=32)

    def test_enum_cache_never_exceeds_bound(self):
        from repro.equations import enumerate as enum_mod
        from repro.equations import set_enumeration_cache_limits

        set_enumeration_cache_limits(enum=3)
        code = RdpCode(7)
        for disk in range(code.layout.n_disks):
            get_recovery_equations(code, code.layout.disk_mask(disk), depth=1)
            assert len(enum_mod._ENUM_CACHE) <= 3
        assert len(enum_mod._ENUM_CACHE) == 3

    def test_eviction_is_lru_order(self):
        from repro.equations import enumerate as enum_mod
        from repro.equations import set_enumeration_cache_limits

        set_enumeration_cache_limits(enum=2)
        code = RdpCode(7)
        masks = [code.layout.disk_mask(d) for d in range(3)]
        get_recovery_equations(code, masks[0], depth=1)
        get_recovery_equations(code, masks[1], depth=1)
        get_recovery_equations(code, masks[0], depth=1)  # refresh 0
        get_recovery_equations(code, masks[2], depth=1)  # evicts 1
        cached_failed = {key[4] for key in enum_mod._ENUM_CACHE}
        assert cached_failed == {masks[0], masks[2]}

    def test_lowering_limit_evicts_immediately(self):
        from repro.equations import enumerate as enum_mod
        from repro.equations import set_enumeration_cache_limits

        code = RdpCode(7)
        for disk in range(4):
            get_recovery_equations(code, code.layout.disk_mask(disk), depth=1)
        set_enumeration_cache_limits(enum=1, closure=1)
        assert len(enum_mod._ENUM_CACHE) == 1
        assert len(enum_mod._CLOSURE_CACHE) <= 1

    def test_rejects_nonpositive_limits(self):
        import pytest

        from repro.equations import set_enumeration_cache_limits

        with pytest.raises(ValueError):
            set_enumeration_cache_limits(enum=0)
        with pytest.raises(ValueError):
            set_enumeration_cache_limits(closure=-1)

    def test_cache_info_reports_sizes(self):
        from repro.equations import enumeration_cache_info

        code = RdpCode(5)
        get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        info = enumeration_cache_info()
        assert info["enum_entries"] == 1
        assert info["closure_entries"] == 1
        assert info["enum_max"] >= 1 and info["closure_max"] >= 1

    def test_sizes_published_as_obs_gauges(self):
        from repro import obs

        rec = obs.enable(label="cache-bounds test")
        try:
            code = RdpCode(5)
            get_recovery_equations(code, code.layout.disk_mask(0), depth=1)
        finally:
            obs.disable()
        assert rec.gauges["enum.cache_entries"].value == 1
        assert rec.gauges["enum.closure_cache_entries"].value == 1

    def test_env_limit_parsing(self, monkeypatch):
        from repro.equations.enumerate import _env_limit

        monkeypatch.setenv("X_CACHE", "17")
        assert _env_limit("X_CACHE", 5) == 17
        monkeypatch.setenv("X_CACHE", "bogus")
        assert _env_limit("X_CACHE", 5) == 5
        monkeypatch.setenv("X_CACHE", "0")
        assert _env_limit("X_CACHE", 5) == 5
        monkeypatch.delenv("X_CACHE")
        assert _env_limit("X_CACHE", 5) == 5
