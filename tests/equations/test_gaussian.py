"""Tests for the Gaussian-elimination decoding-equation fallback."""

from repro.codes import CauchyRSCode, RdpCode, StarCode
from repro.equations import gaussian_recovery_equations, get_recovery_equations


class TestGaussianEquations:
    def test_isolates_each_failed_element(self):
        code = RdpCode(5)
        lay = code.layout
        failed = lay.disk_mask(0)
        eids = sorted(d * lay.k_rows + r for d, r in lay.iter_elements(failed))
        eqs = gaussian_recovery_equations(code, eids)
        for f, eq in zip(eids, eqs):
            assert eq is not None
            assert (eq >> f) & 1
            # failed support is exactly {f}
            assert eq & failed == 1 << f

    def test_equations_in_code_space(self):
        """Every synthesized equation must vanish on codewords."""
        import random

        code = StarCode(5)
        lay = code.layout
        failed = lay.disk_mask(0) | lay.disk_mask(1)
        eids = sorted(d * lay.k_rows + r for d, r in lay.iter_elements(failed))
        eqs = gaussian_recovery_equations(code, eids)
        rng = random.Random(7)
        vec = code.encode_vector(rng.getrandbits(len(code.data_eids())))
        for eq in eqs:
            assert eq is not None
            assert (eq & vec).bit_count() % 2 == 0

    def test_unrecoverable_yields_none(self):
        code = RdpCode(5)
        lay = code.layout
        failed = lay.disk_mask(0) | lay.disk_mask(1) | lay.disk_mask(2)
        eids = sorted(d * lay.k_rows + r for d, r in lay.iter_elements(failed))
        eqs = gaussian_recovery_equations(code, eids)
        assert any(eq is None for eq in eqs)

    def test_ensure_complete_fills_only_empty_slots(self):
        """Options found by the bounded enumeration are kept; the fallback
        only plugs holes."""
        code = CauchyRSCode(4, 2, w=4)
        failed = code.layout.disk_mask(2)
        plain = get_recovery_equations(code, failed, depth=1)
        completed = get_recovery_equations(
            code, failed, depth=1, ensure_complete=True
        )
        assert not plain.is_complete()
        assert completed.is_complete()
        for i in range(plain.n_failed):
            if plain.options[i]:
                assert completed.options[i] == plain.options[i]
            else:
                assert len(completed.options[i]) == 1

    def test_completed_equations_validate(self):
        code = CauchyRSCode(4, 2, w=4)
        failed = code.layout.disk_mask(1)
        rec = get_recovery_equations(code, failed, depth=1, ensure_complete=True)
        rec.validate()
