"""Unit tests for calculation-equation algebra."""

import pytest

from repro.equations.calc import (
    combination_closure,
    equation_space_size,
    filter_minimal_support,
    xor_all,
)


class TestCombinationClosure:
    def test_depth1_yields_originals(self):
        eqs = [0b011, 0b110]
        assert list(combination_closure(eqs, 1)) == eqs

    def test_depth2_adds_pairs(self):
        eqs = [0b011, 0b110, 0b101]
        out = list(combination_closure(eqs, 2))
        assert len(out) == 3 + 3
        assert 0b011 ^ 0b110 in out

    def test_depth_exceeding_count_is_clamped(self):
        eqs = [0b01, 0b10]
        out = list(combination_closure(eqs, 10))
        assert len(out) == 3  # singletons + one pair

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            list(combination_closure([1], 0))

    def test_full_depth_count(self):
        eqs = [1, 2, 4, 8]
        out = list(combination_closure(eqs, 4))
        assert len(out) == 2**4 - 1  # all non-empty subsets

    def test_space_size(self):
        assert equation_space_size(5) == 32


class TestHelpers:
    def test_xor_all(self):
        assert xor_all([0b101, 0b011]) == 0b110
        assert xor_all([]) == 0

    def test_filter_minimal_support_drops_supersets(self):
        masks = [0b111, 0b011, 0b100]
        kept = filter_minimal_support(masks)
        assert 0b111 not in kept
        assert set(kept) == {0b011, 0b100}

    def test_filter_minimal_support_dedupes(self):
        assert filter_minimal_support([0b1, 0b1]) == [0b1]

    def test_filter_keeps_incomparable(self):
        masks = [0b0011, 0b1100]
        assert set(filter_minimal_support(masks)) == set(masks)
