"""An executable abstract: one test per headline claim of the paper.

Each test names the claim, the paper's number, and the band our
reproduction must land in.  Bands are deliberately generous where the
substitutions (simulator, Liber8tion-class code, tie-break behaviour)
shift constants — EXPERIMENTS.md discusses each gap.
"""

import pytest

from repro.analysis import (
    SchemeCache,
    aggregate_improvements,
    figure3_series,
)
from repro.codes import Liber8tionCode, RdpCode, make_code
from repro.disksim import simulate_stack_recovery
from repro.recovery import (
    RecoveryPlanner,
    c_scheme,
    khan_scheme,
    naive_scheme,
    u_scheme,
)

DISKS = range(7, 13)  # trimmed grid keeps this module seconds-fast


@pytest.fixture(scope="module")
def cache():
    return SchemeCache(depth=1)


@pytest.fixture(scope="module")
def fig3(cache):
    return {
        fam: figure3_series(fam, DISKS, cache=cache)
        for fam in ("rdp", "evenodd", "liberation")
    }


class TestSection2Claims:
    def test_xiang_25_percent_io_saving(self):
        """'Xiang's recovery schemes reduce 25% I/O cost compared with the
        naive recovery scheme' (Sec. II-B) — for RDP."""
        code = RdpCode(7)
        naive = naive_scheme(code, 0).total_reads
        optimal = khan_scheme(code, 0, depth=1).total_reads
        assert (naive - optimal) / naive == pytest.approx(0.25)

    def test_unbalanced_min_read_exists(self):
        """'much data may be allocated on merely a portion of disks' — Khan
        ties include genuinely unbalanced schemes (Fig. 1a)."""
        code = RdpCode(7)
        khan = khan_scheme(code, 0, depth=1)
        c = c_scheme(code, 0, depth=1)
        assert khan.max_load > c.max_load


class TestFigure1Claim:
    def test_balanced_scheme_18_5_percent_faster(self):
        """Paper: 18.5% higher recovery speed; we accept 10-30% on the
        simulator."""
        code = RdpCode(7)
        khan = simulate_stack_recovery(code, [khan_scheme(code, 0, depth=1)])
        bal = simulate_stack_recovery(code, [c_scheme(code, 0, depth=1)])
        gain = 1 - khan.speed_mb_s / bal.speed_mb_s
        assert 0.10 < gain < 0.30


class TestFigure2Claim:
    def test_u_trades_total_for_max_load(self):
        """Paper: total 47->48, max 8->6; our Liber8tion-class substitute
        must show the same trade direction."""
        code = Liber8tionCode(8)
        c = c_scheme(code, 1, depth=1)
        u = u_scheme(code, 1, depth=1)
        assert u.total_reads == c.total_reads + 1
        assert u.max_load < c.max_load

    def test_16_percent_time_saving_band(self):
        code = Liber8tionCode(8)
        c = simulate_stack_recovery(code, [c_scheme(code, 1, depth=1)])
        u = simulate_stack_recovery(code, [u_scheme(code, 1, depth=1)])
        gain = 1 - c.speed_mb_s / u.speed_mb_s
        assert 0.05 < gain < 0.25  # paper: 0.16


class TestSection5Claims:
    def test_c_improvement_band(self, fig3):
        """Paper: C up to 22.9%; we require a double-digit maximum."""
        agg = aggregate_improvements(fig3)
        assert 10.0 < agg["c"]["max_percent"] < 30.0

    def test_u_improvement_band(self, fig3):
        """Paper: U up to 25.0%, average 16.4%; we require max in
        [15, 30] and mean above 5%."""
        agg = aggregate_improvements(fig3)
        assert 15.0 < agg["u"]["max_percent"] < 30.0
        assert agg["u"]["mean_percent"] > 5.0

    def test_u_never_worse_than_c(self, fig3):
        for series in fig3.values():
            for c, u in zip(series["c"], series["u"]):
                assert u <= c + 1e-9

    def test_star_needs_fewer_parallel_reads(self, cache):
        """'there are more calculation equations in the higher failure
        tolerance code ... which potentially needs less recovery time'
        (Sec. V-A): STAR's U curve sits below RDP's at equal disks."""
        star = figure3_series("star", DISKS, cache=cache)
        rdp = figure3_series("rdp", DISKS, cache=cache)
        star_mean = sum(star["u"]) / len(star["u"])
        rdp_mean = sum(rdp["u"]) / len(rdp["u"])
        assert star_mean < rdp_mean

    def test_c_runs_same_search_scale_as_khan(self):
        """Sec. V-B: C's extra work over Khan is marginal — same order of
        expanded states."""
        code = make_code("rdp", 10)
        k = khan_scheme(code, 0, depth=1).expanded_states
        c = c_scheme(code, 0, depth=1).expanded_states
        assert c <= 2 * k


class TestSection6Claims:
    def test_measured_improvement_below_theoretical(self, cache):
        """Sec. VI-B: seeks dilute the speedup — the simulated time
        reduction must not exceed the parallel-read reduction by more than
        noise, for the U scheme on RDP."""
        from repro.analysis import figure4_series

        f3 = figure3_series("rdp", DISKS, cache=cache)
        f4 = figure4_series("rdp", DISKS, cache=cache)
        for i in range(len(list(DISKS))):
            theory = 1 - f3["u"][i] / f3["khan"][i]
            measured = 1 - f4["khan"][i] / f4["u"][i]
            assert measured <= theory + 0.02

    def test_recovery_speed_magnitudes(self, cache):
        """Speeds must land in the tens of MB/s (paper: 35-65; simulator
        runs ~20-30% hot, see docs/simulator.md)."""
        from repro.analysis import figure4_series

        f4 = figure4_series("evenodd", DISKS, cache=cache)
        for series in f4.values():
            assert all(30.0 < v < 120.0 for v in series)

    def test_correctness_check_of_the_paper(self):
        """'we also compare the original data in the virtual failed disk
        with the recovered data' — on every algorithm."""
        from repro.codec import verify_scheme_on_random_data

        code = make_code("rdp", 8)
        for alg in ("naive", "khan", "c", "u"):
            planner = RecoveryPlanner(code, alg, depth=1)
            for d in code.layout.data_disks:
                assert verify_scheme_on_random_data(
                    code, planner.scheme_for_disk(d), seed=d
                )
