"""Property-based invariants across random codes and failure situations."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codec import verify_scheme_on_random_data
from repro.codes import (
    BlaumRothCode,
    CauchyRSCode,
    EvenOddCode,
    Liber8tionCode,
    LiberationCode,
    RdpCode,
    StarCode,
)
from repro.recovery import c_scheme, khan_scheme, naive_scheme, u_scheme

# strategy: a small random code instance
small_codes = st.sampled_from(
    [
        RdpCode(5),
        RdpCode(7),
        RdpCode(7, n_data=4),
        EvenOddCode(5),
        EvenOddCode(5, n_data=3),
        BlaumRothCode(5),
        LiberationCode(5),
        Liber8tionCode(5),
        StarCode(5),
        CauchyRSCode(4, 2, w=4),
    ]
)

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(code=small_codes, data=st.data())
@settings(**SETTINGS)
def test_paper_inequalities_hold(code, data):
    """khan.total == c.total <= u.total and u.max <= c.max <= khan.max,
    for every randomly chosen failed data disk."""
    disk = data.draw(st.integers(0, code.layout.n_data - 1))
    k = khan_scheme(code, disk, depth=1)
    c = c_scheme(code, disk, depth=1)
    u = u_scheme(code, disk, depth=1)
    assert c.total_reads == k.total_reads
    assert u.total_reads >= k.total_reads
    assert u.max_load <= c.max_load <= k.max_load


@given(code=small_codes, data=st.data())
@settings(**SETTINGS)
def test_schemes_always_executable(code, data):
    disk = data.draw(st.integers(0, code.layout.n_disks - 1))
    alg = data.draw(st.sampled_from([naive_scheme, khan_scheme, u_scheme]))
    if alg is naive_scheme:
        try:
            scheme = alg(code, disk)
        except ValueError:
            # documented: dense codes (Cauchy) may lack a single-equation
            # naive scheme — the search-based generators still work
            scheme = khan_scheme(code, disk, depth=1)
    else:
        scheme = alg(code, disk, depth=1)
    scheme.validate(code)
    assert verify_scheme_on_random_data(code, scheme, element_size=16, seed=7)


@given(code=small_codes, data=st.data())
@settings(**SETTINGS)
def test_read_set_never_includes_failed_disk(code, data):
    disk = data.draw(st.integers(0, code.layout.n_data - 1))
    scheme = u_scheme(code, disk, depth=1)
    assert scheme.read_mask & code.layout.disk_mask(disk) == 0


@given(code=small_codes, data=st.data())
@settings(**SETTINGS)
def test_total_reads_bounded_by_naive(code, data):
    """Optimized schemes never read more than every surviving element."""
    disk = data.draw(st.integers(0, code.layout.n_data - 1))
    scheme = khan_scheme(code, disk, depth=1)
    surviving = code.layout.n_elements - code.layout.k_rows
    assert 1 <= scheme.total_reads <= surviving


@given(code=small_codes, data=st.data())
@settings(**SETTINGS)
def test_maxload_bounds(code, data):
    """max_load is between ceil(total/disks-1) and k."""
    disk = data.draw(st.integers(0, code.layout.n_data - 1))
    scheme = u_scheme(code, disk, depth=1)
    lay = code.layout
    lower = -(-scheme.total_reads // (lay.n_disks - 1))
    assert lower <= scheme.max_load <= lay.k_rows


@given(
    code=st.sampled_from([RdpCode(5), EvenOddCode(5), StarCode(5)]),
    data=st.data(),
)
@settings(**SETTINGS)
def test_random_recoverable_masks_recover(code, data):
    """Any random failed-element subset that passes the rank test recovers
    byte-exactly (Sec. V-D generality)."""
    from repro.recovery import recover_failure
    from repro.recovery.multifailure import UnrecoverableError

    lay = code.layout
    n_failed = data.draw(st.integers(1, 2 * lay.k_rows))
    eids = data.draw(
        st.lists(
            st.integers(0, lay.n_elements - 1),
            min_size=1,
            max_size=n_failed,
            unique=True,
        )
    )
    mask = 0
    for e in eids:
        mask |= 1 << e
    try:
        scheme = recover_failure(code, mask, algorithm="u")
    except UnrecoverableError:
        assert not code.is_recoverable(mask)
        return
    scheme.validate(code)
    assert verify_scheme_on_random_data(code, scheme, element_size=16, seed=3)


@given(st.integers(0, 2**16 - 1), st.integers(2, 6))
@settings(max_examples=40, deadline=None)
def test_codec_roundtrip_random_codes(seed, n_data):
    """Cauchy codes of random geometry encode/verify on random bytes."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 4))
    code = CauchyRSCode(n_data, m, w=4)
    from repro.codec import StripeCodec

    codec = StripeCodec(code, element_size=8)
    stripe = codec.encode(codec.random_data(rng))
    assert codec.check_stripe(stripe)
