"""Ground-truth cross-validation on small codes.

The exhaustive equation enumeration walks the *entire* calculation-equation
space, so UCS over those options yields the true optimum of each objective.
These tests pin the bounded-depth pipeline against that ground truth per
family — the strongest optimality evidence the suite carries.
"""

import pytest

from repro.codes import (
    BlaumRothCode,
    EvenOddCode,
    LiberationCode,
    RdpCode,
)
from repro.equations import (
    exhaustive_recovery_equations,
    get_recovery_equations,
)
from repro.recovery.search import (
    conditional_cost,
    generate_scheme,
    khan_cost,
    unconditional_cost,
)

SMALL_RAID6 = [
    pytest.param(lambda: RdpCode(5), id="rdp5"),
    pytest.param(lambda: EvenOddCode(5), id="evenodd5"),
    pytest.param(lambda: BlaumRothCode(5), id="blaum-roth5"),
    pytest.param(lambda: LiberationCode(5), id="liberation5"),
]


@pytest.mark.parametrize("factory", SMALL_RAID6)
class TestAgainstGroundTruth:
    def test_depth2_reaches_true_min_total(self, factory):
        """Khan at depth 2 equals the full-space minimum on every disk."""
        code = factory()
        lay = code.layout
        for disk in lay.data_disks:
            failed = lay.disk_mask(disk)
            full = exhaustive_recovery_equations(code, failed)
            truth = generate_scheme(full, khan_cost(lay), "truth")
            bounded = get_recovery_equations(code, failed, depth=2)
            ours = generate_scheme(bounded, khan_cost(lay), "ours")
            assert ours.total_reads == truth.total_reads, f"disk {disk}"

    def test_depth2_reaches_true_min_maxload(self, factory):
        """U at depth 2 equals the full-space minimum max load."""
        code = factory()
        lay = code.layout
        for disk in lay.data_disks:
            failed = lay.disk_mask(disk)
            full = exhaustive_recovery_equations(code, failed)
            truth = generate_scheme(full, unconditional_cost(lay), "truth")
            bounded = get_recovery_equations(code, failed, depth=2)
            ours = generate_scheme(bounded, unconditional_cost(lay), "ours")
            assert ours.max_load == truth.max_load, f"disk {disk}"

    def test_conditional_true_optimum(self, factory):
        """C at depth 2 equals the full-space (total, max) optimum."""
        code = factory()
        lay = code.layout
        disk = 0
        failed = lay.disk_mask(disk)
        full = exhaustive_recovery_equations(code, failed)
        truth = generate_scheme(full, conditional_cost(lay), "truth")
        bounded = get_recovery_equations(code, failed, depth=2)
        ours = generate_scheme(bounded, conditional_cost(lay), "ours")
        assert (ours.total_reads, ours.max_load) == (
            truth.total_reads,
            truth.max_load,
        )

    def test_depth1_gap_is_bounded(self, factory):
        """Depth 1 may miss the optimum (EVENODD family) but never by more
        than a few reads — the figure sweeps stay representative."""
        code = factory()
        lay = code.layout
        worst_gap = 0
        for disk in lay.data_disks:
            failed = lay.disk_mask(disk)
            full = exhaustive_recovery_equations(code, failed)
            truth = generate_scheme(full, khan_cost(lay), "truth")
            bounded = get_recovery_equations(code, failed, depth=1)
            ours = generate_scheme(bounded, khan_cost(lay), "ours")
            worst_gap = max(worst_gap, ours.total_reads - truth.total_reads)
        assert worst_gap <= 2
