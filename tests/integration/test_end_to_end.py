"""Cross-module integration: code -> scheme -> bytes -> simulator."""

import numpy as np
import pytest

from repro import (
    RecoveryPlanner,
    StripeCodec,
    make_code,
    simulate_stack_recovery,
    verify_scheme_on_random_data,
)
from repro.codes import PAPER_FIGURE_FAMILIES
from repro.disksim import EventDrivenArray, PoissonWorkload
from repro.recovery import c_scheme, khan_scheme, u_scheme


@pytest.mark.parametrize("family", PAPER_FIGURE_FAMILIES)
@pytest.mark.parametrize("n_disks", [7, 9])
class TestFullPipeline:
    def test_generate_execute_verify(self, family, n_disks):
        """The complete paper workflow for every figure family."""
        code = make_code(family, n_disks)
        planner = RecoveryPlanner(code, algorithm="u", depth=1)
        for disk in code.layout.data_disks:
            scheme = planner.scheme_for_disk(disk)
            scheme.validate(code)
            assert verify_scheme_on_random_data(
                code, scheme, element_size=32, seed=disk
            )

    def test_simulated_speed_ordering(self, family, n_disks):
        code = make_code(family, n_disks)
        speeds = {}
        for alg in ("khan", "u"):
            schemes = RecoveryPlanner(code, algorithm=alg, depth=1).all_data_disk_schemes()
            speeds[alg] = simulate_stack_recovery(code, schemes).speed_mb_s
        assert speeds["u"] >= speeds["khan"] - 1e-9


class TestDegradedRead:
    """Online recovery with user traffic across the whole stack."""

    def test_balanced_scheme_helps_under_load(self):
        code = make_code("rdp", 8)
        lay = code.layout
        wl = PoissonWorkload(10.0, lay.n_disks, lay.k_rows, seed=9)
        requests = wl.generate(120.0)
        results = {}
        for alg, fn in (("khan", khan_scheme), ("u", u_scheme)):
            scheme = fn(code, 0, depth=1)
            arr = EventDrivenArray(lay.n_disks)
            results[alg] = arr.run_online_recovery(
                code, [scheme], stripes=20, user_requests=list(requests)
            )
        assert results["u"].recovery_finish_s <= results["khan"].recovery_finish_s * 1.05

    def test_recovered_bytes_identical_across_algorithms(self):
        """Different schemes, same recovered data."""
        code = make_code("evenodd", 8)
        codec = StripeCodec(code, element_size=128)
        stripe = codec.encode(codec.random_data(np.random.default_rng(31)))
        from repro.codec import execute_scheme

        outs = []
        for fn in (khan_scheme, c_scheme, u_scheme):
            rec = execute_scheme(fn(code, 2, depth=1), stripe)
            outs.append({k: v.tobytes() for k, v in rec.items()})
        assert outs[0] == outs[1] == outs[2]


class TestPublicApi:
    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        """The flow advertised in the package docstring actually runs."""
        from repro import make_code, u_scheme

        code = make_code("rdp", 8)
        scheme = u_scheme(code, failed_disk=0)
        assert "u-scheme" in scheme.summary()
        assert scheme.render()
