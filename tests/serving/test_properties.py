"""Property suite: served degraded reads are byte-identical to direct
plan execution and to the pristine encoding, including reads racing the
rebuild frontier."""

import threading

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.codec import ArrayImageCodec
from repro.codes import CauchyRSCode, EvenOddCode, RdpCode
from repro.recovery import degraded_read_scheme, serve_degraded_read
from repro.serving import ServingEngine

small_codes = st.sampled_from(
    [RdpCode(5), RdpCode(7), EvenOddCode(5), CauchyRSCode(4, 2, w=4)]
)

SETTINGS = dict(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


def build_engine(code, failed_disk, n_stripes=3, seed=5, **kw):
    codec = ArrayImageCodec(code, element_size=8, n_stripes=n_stripes)
    disks = codec.encode_image(codec.random_image(np.random.default_rng(seed)))
    return codec, disks.copy(), ServingEngine(codec, disks, failed_disk, **kw)


@given(code=small_codes, data=st.data())
@settings(**SETTINGS)
def test_engine_matches_pristine_and_direct_plan(code, data):
    """engine.read == pristine bytes == serve_degraded_read of a dedicated
    degraded-read scheme, for every element of the failed disk."""
    lay = code.layout
    failed = data.draw(st.integers(0, lay.n_disks - 1), label="failed_disk")
    row = data.draw(st.integers(0, lay.k_rows - 1), label="row")
    stripe_i = data.draw(st.integers(0, 2), label="stripe")
    codec, original, engine = build_engine(code, failed)

    global_row = stripe_i * lay.k_rows + row
    served = engine.read(failed, global_row)
    assert np.array_equal(served, original[failed, global_row])

    # direct execution of a dedicated (non-sliced) degraded-read scheme
    # over the same stripe must agree byte-for-byte
    logical = codec.logical_role(failed, stripe_i)
    scheme = degraded_read_scheme(code, logical, rows=[row], algorithm="u")
    stripe = codec._logical_stripe(original, stripe_i)
    masked = stripe.copy()
    for _, lrow in lay.iter_elements(lay.disk_mask(logical)):
        masked[lay.eid(logical, lrow)] = 0
    out = serve_degraded_read(code, scheme, masked)
    eid = lay.eid(logical, row)
    assert np.array_equal(out[eid], stripe[eid])
    assert np.array_equal(served, stripe[eid])


@given(code=small_codes, data=st.data())
@settings(max_examples=5, deadline=None)
def test_coalesced_multi_row_reads_match_pristine(code, data):
    """A multi-row sliced plan (the coalesced-flight path) answers every
    row byte-exactly."""
    lay = code.layout
    failed = data.draw(st.integers(0, lay.n_disks - 1), label="failed_disk")
    rows = data.draw(
        st.sets(st.integers(0, lay.k_rows - 1), min_size=2, max_size=lay.k_rows),
        label="rows",
    )
    codec, original, engine = build_engine(code, failed)
    got = engine._reconstruct_rows(0, sorted(rows))
    for row in rows:
        assert np.array_equal(got[row], original[failed, row]), row


@given(code=small_codes, data=st.data())
@settings(max_examples=5, deadline=None)
def test_reads_racing_the_rebuild_frontier(code, data):
    """Concurrent reads issued while the rebuild frontier advances are
    byte-exact regardless of which side of the frontier they land on."""
    lay = code.layout
    failed = data.draw(st.integers(0, lay.n_disks - 1), label="failed_disk")
    seed = data.draw(st.integers(0, 2**16), label="seed")
    codec, original, engine = build_engine(code, failed, n_stripes=8, seed=seed)
    total_rows = codec.n_stripes * lay.k_rows
    mismatches = []

    def reader(rseed):
        rng = np.random.default_rng(rseed)
        while not engine.rebuild_done.is_set():
            row = int(rng.integers(total_rows))
            if not np.array_equal(engine.read(failed, row), original[failed, row]):
                mismatches.append(row)

    threads = [threading.Thread(target=reader, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    engine.start_rebuild(chunk_stripes=2)
    assert engine.wait_rebuild(timeout=60.0)
    for t in threads:
        t.join(timeout=30.0)
    assert not mismatches
    assert np.array_equal(engine.rebuild_result.image, original[failed])
