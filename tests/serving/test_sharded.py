"""Sharded serving engine: shard core correctness, throttle, full mp runs."""

import numpy as np
import pytest

from repro import obs
from repro.codec import ArrayImageCodec
from repro.codes import make_code
from repro.disksim.workload import Request
from repro.serving import (
    BoardThrottle,
    ShardServer,
    ShardedServingEngine,
)
from repro.serving.shm import (
    BOARD_FIELDS,
    BOARD_P99_MS,
    BOARD_SERVED,
    SharedServingState,
)


def build(family="rdp", n_disks=7, element_size=16, n_stripes=12, seed=7):
    code = make_code(family, n_disks)
    codec = ArrayImageCodec(code, element_size=element_size, n_stripes=n_stripes)
    disks = codec.encode_image(codec.random_image(np.random.default_rng(seed)))
    return codec, disks


def hotspot_trace(codec, failed_disk, count, rate, seed=0):
    lay = codec.code.layout
    total_rows = codec.n_stripes * lay.k_rows
    rng = np.random.default_rng(seed)
    reqs = []
    for i in range(count):
        disk = failed_disk if rng.random() < 0.8 else int(
            rng.integers(lay.n_disks)
        )
        reqs.append(
            Request(
                arrival_s=i / rate, disk=disk, row=int(rng.integers(total_rows))
            )
        )
    return reqs


class TestShardServer:
    def test_every_read_path_byte_exact(self):
        codec, disks = build()
        original = disks.copy()
        lay = codec.code.layout
        total_rows = codec.n_stripes * lay.k_rows
        patched = np.zeros((total_rows, codec.element_size), dtype=np.uint8)
        server = ShardServer(
            codec, disks, patched, failed_disk=2, stripe_lo=0,
            stripe_hi=codec.n_stripes,
        )
        # degraded (failed disk, frontier behind) + direct (survivors)
        for row in range(total_rows):
            assert np.array_equal(server.read(2, row), original[2, row]), row
            assert np.array_equal(server.read(0, row), original[0, row]), row
        assert server.mismatches == 0
        assert server.n_degraded == total_rows
        assert server.n_direct == total_rows
        assert server.n_patched == 0

    def test_patched_path_after_note_rebuilt(self):
        codec, disks = build(n_stripes=8)
        original = disks.copy()
        lay = codec.code.layout
        k = lay.k_rows
        total_rows = codec.n_stripes * k
        patched = np.zeros((total_rows, codec.element_size), dtype=np.uint8)
        # pre-patch stripes 0..3 with the true bytes, then notify
        patched[: 4 * k] = original[1, : 4 * k]
        server = ShardServer(
            codec, disks, patched, failed_disk=1, stripe_lo=0,
            stripe_hi=codec.n_stripes,
        )
        server.note_rebuilt(np.arange(4))
        for row in range(total_rows):
            assert np.array_equal(server.read(1, row), original[1, row]), row
        assert server.n_patched == 4 * k
        assert server.n_degraded == 4 * k
        assert server.mismatches == 0

    def test_patched_mismatch_is_counted(self):
        codec, disks = build(n_stripes=4)
        lay = codec.code.layout
        total_rows = codec.n_stripes * lay.k_rows
        patched = np.zeros((total_rows, codec.element_size), dtype=np.uint8)
        patched[0] = 0xAB  # wrong bytes for stripe 0
        server = ShardServer(
            codec, disks, patched, failed_disk=0, stripe_lo=0,
            stripe_hi=codec.n_stripes,
        )
        server.note_rebuilt(np.asarray([0]))
        server.read(0, 0)
        assert server.mismatches >= 1

    def test_batched_degraded_reads_group_and_verify(self):
        codec, disks = build(n_stripes=12)
        original = disks.copy()
        lay = codec.code.layout
        k = lay.k_rows
        total_rows = codec.n_stripes * k
        patched = np.zeros((total_rows, codec.element_size), dtype=np.uint8)
        server = ShardServer(
            codec, disks, patched, failed_disk=3, stripe_lo=0,
            stripe_hi=codec.n_stripes,
        )
        rng = np.random.default_rng(1)
        rows = rng.integers(0, total_rows, size=64)
        dks = np.full(64, 3, dtype=np.int64)
        _, data = server._serve_batch(dks, rows, want_data=True)
        for t in range(64):
            assert np.array_equal(data[t], original[3, rows[t]]), t
        assert server.mismatches == 0
        assert server.n_batches == 1  # one scoop, grouped internally

    def test_rejects_bad_ranges(self):
        codec, disks = build(n_stripes=4)
        total_rows = codec.n_stripes * codec.code.layout.k_rows
        patched = np.zeros((total_rows, codec.element_size), dtype=np.uint8)
        with pytest.raises(ValueError):
            ShardServer(codec, disks, patched, 0, stripe_lo=3, stripe_hi=2)
        with pytest.raises(ValueError):
            ShardServer(codec, disks, patched, 0, stripe_lo=0, stripe_hi=99)
        with pytest.raises(IndexError):
            ShardServer(codec, disks, patched, 42, stripe_lo=0, stripe_hi=4)

    def test_empty_range_is_a_legal_idle_shard(self):
        codec, disks = build(n_stripes=4)
        total_rows = codec.n_stripes * codec.code.layout.k_rows
        patched = np.zeros((total_rows, codec.element_size), dtype=np.uint8)
        server = ShardServer(codec, disks, patched, 0, stripe_lo=2, stripe_hi=2)
        empty = np.empty(0)
        res = server.serve_trace(
            empty, empty.astype(np.int64), empty.astype(np.int64),
            t_start=0.0,
        )
        assert res["served"] == 0
        assert res["mismatches"] == 0
        assert res["p99_ms"] == 0.0

    def test_serve_trace_open_loop(self):
        codec, disks = build(n_stripes=12)
        lay = codec.code.layout
        total_rows = codec.n_stripes * lay.k_rows
        patched = np.zeros((total_rows, codec.element_size), dtype=np.uint8)
        server = ShardServer(
            codec, disks, patched, failed_disk=0, stripe_lo=0,
            stripe_hi=codec.n_stripes,
        )
        import time

        n = 300
        rng = np.random.default_rng(2)
        arr = np.arange(n) / 4000.0
        dks = rng.integers(0, lay.n_disks, size=n)
        rws = rng.integers(0, total_rows, size=n)
        res = server.serve_trace(arr, dks, rws, t_start=time.monotonic() + 0.05)
        assert res["served"] == n
        assert res["mismatches"] == 0
        assert res["direct"] + res["patched"] + res["degraded"] == n
        assert res["p99_ms"] >= res["p50_ms"]
        assert len(res["latencies"]) == n


class TestBoardThrottle:
    def _board(self, n_shards=2):
        return np.zeros((n_shards, BOARD_FIELDS), dtype=np.float64)

    def test_worst_p99_ignores_underreporting_shards(self):
        board = self._board()
        board[0, BOARD_SERVED] = 100
        board[0, BOARD_P99_MS] = 5.0
        board[1, BOARD_SERVED] = 3  # < min_served: not trusted yet
        board[1, BOARD_P99_MS] = 500.0
        throttle = BoardThrottle(board, target_p99_ms=10.0)
        assert throttle.board_p99_ms() == 5.0

    def test_aimd_decreases_over_target_and_recovers(self):
        board = self._board()
        board[0, BOARD_SERVED] = 100
        throttle = BoardThrottle(
            board, target_p99_ms=10.0, rate=64.0, adjust_interval_s=0.0
        )
        board[0, BOARD_P99_MS] = 50.0  # over target -> halve
        throttle._maybe_adjust()
        assert throttle.bucket.rate == 32.0
        assert throttle.rate_decreases == 1
        board[0, BOARD_P99_MS] = 2.0  # comfortably under -> ramp
        throttle._maybe_adjust()
        assert throttle.bucket.rate == pytest.approx(32.0 * 1.2)
        assert throttle.rate_increases == 1

    def test_rate_floor_holds(self):
        board = self._board()
        board[0, BOARD_SERVED] = 100
        board[0, BOARD_P99_MS] = 1e6
        throttle = BoardThrottle(
            board, target_p99_ms=1.0, rate=4.0, floor_rate=2.0,
            adjust_interval_s=0.0,
        )
        for _ in range(10):
            throttle._maybe_adjust()
        assert throttle.bucket.rate == 2.0

    def test_no_target_means_no_adjustment(self):
        board = self._board()
        board[0, BOARD_SERVED] = 100
        board[0, BOARD_P99_MS] = 1e6
        throttle = BoardThrottle(board, target_p99_ms=None, rate=8.0)
        throttle._maybe_adjust()
        assert throttle.bucket.rate == 8.0

    def test_rejects_bad_parameters(self):
        board = self._board()
        with pytest.raises(ValueError):
            BoardThrottle(board, target_p99_ms=-1.0)
        with pytest.raises(ValueError):
            BoardThrottle(board, floor_rate=0.0)


class TestSharedServingState:
    def test_roundtrip_through_spec(self):
        state = SharedServingState(3, 8, 4, 2)
        try:
            state.disks[:] = 7
            state.patched[:] = 9
            state.board[1, BOARD_SERVED] = 42.0
            peer = SharedServingState.attach(state.spec)
            try:
                assert np.all(peer.disks == 7)
                assert np.all(peer.patched == 9)
                assert peer.board[1, BOARD_SERVED] == 42.0
                peer.patched[0, 0] = 1  # writable from the attach side
                assert state.patched[0, 0] == 1
            finally:
                peer.close()
        finally:
            state.close()

    @pytest.mark.parametrize("fail_on", [2, 3])
    def test_partial_creation_unlinks_earlier_blocks(self, monkeypatch, fail_on):
        # force the 2nd/3rd allocation to fail: the blocks created before
        # it must be closed AND unlinked (no leaked /dev/shm segments)
        from multiprocessing import shared_memory as shm_mod

        real = shm_mod.SharedMemory
        created = []
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            if kwargs.get("create"):
                calls["n"] += 1
                if calls["n"] == fail_on:
                    raise OSError(28, "No space left on device")
            seg = real(*args, **kwargs)
            if kwargs.get("create"):
                created.append(seg.name)
            return seg

        monkeypatch.setattr("repro.serving.shm.shared_memory.SharedMemory", flaky)
        with pytest.raises(OSError):
            SharedServingState(3, 8, 4, 2)
        assert len(created) == fail_on - 1
        monkeypatch.undo()
        for name in created:  # every earlier block must be gone
            with pytest.raises(FileNotFoundError):
                shm_mod.SharedMemory(name=name)


class TestShardedServingEngine:
    def test_bad_shard_count_raises_immediately(self):
        codec, disks = build(n_stripes=6)
        with pytest.raises(ValueError):
            ShardedServingEngine(codec, disks, failed_disk=0, n_shards=0)
        with pytest.raises(ValueError):
            ShardedServingEngine(codec, disks, failed_disk=0, n_shards=-3)

    def test_more_shards_than_stripes_runs_with_idle_shards(self):
        # n_shards > n_stripes: surplus shards idle with empty ranges;
        # replay must finish byte-exact and the merged percentiles must
        # come only from the shards that actually served
        codec, disks = build(n_stripes=4)
        engine = ShardedServingEngine(codec, disks, failed_disk=1, n_shards=6)
        reqs = hotspot_trace(codec, failed_disk=1, count=120, rate=3000.0)
        report = engine.serve_trace(reqs, timeout_s=120.0, rebuild=False)
        assert report.ok
        assert report.n_shards == 6
        assert report.served == 120
        assert sum(1 for r in report.per_shard if r["served"] == 0) >= 2
        # idle shards publish zeros — the board/report p99 is not dragged
        # to zero by them
        assert report.p99_ms > 0.0

    def test_two_shard_run_byte_exact_with_rebuild(self):
        codec, disks = build(n_stripes=16)
        engine = ShardedServingEngine(
            codec, disks, failed_disk=1, n_shards=2, rebuild_chunk_stripes=4
        )
        reqs = hotspot_trace(codec, failed_disk=1, count=400, rate=3000.0)
        report = engine.serve_trace(reqs, timeout_s=120.0)
        assert report.ok
        assert report.n_shards == 2
        assert report.served == 400
        assert report.mismatches == 0
        assert report.rebuild_wall_s is not None
        assert len(report.per_shard) == 2
        assert sum(r["served"] for r in report.per_shard) == 400

    def test_single_shard_run_without_rebuild(self):
        codec, disks = build(n_stripes=8)
        engine = ShardedServingEngine(codec, disks, failed_disk=0, n_shards=1)
        reqs = hotspot_trace(codec, failed_disk=0, count=150, rate=3000.0)
        report = engine.serve_trace(reqs, timeout_s=60.0, rebuild=False)
        assert report.ok
        assert report.served == 150
        # no rebuild: nothing ever lands on the patched path
        assert all(r["patched"] == 0 for r in report.per_shard)
        assert report.rebuild_wall_s is None

    def test_obs_snapshots_merge_into_parent(self):
        codec, disks = build(n_stripes=8)
        rec = obs.enable("sharded-test")
        try:
            engine = ShardedServingEngine(
                codec, disks, failed_disk=0, n_shards=2
            )
            reqs = hotspot_trace(codec, failed_disk=0, count=200, rate=3000.0)
            report = engine.serve_trace(reqs, timeout_s=60.0)
            assert report.ok
            snap = rec.snapshot()
            assert snap["counters"]["serving.reads"] == 200
        finally:
            obs.disable()

    def test_simulated_io_run_stays_exact(self):
        codec, disks = build(n_stripes=8)
        engine = ShardedServingEngine(
            codec,
            disks,
            failed_disk=2,
            n_shards=2,
            element_read_ms=0.05,
            rebuild_rate=50.0,
            rebuild_chunk_stripes=4,
        )
        reqs = hotspot_trace(codec, failed_disk=2, count=200, rate=2000.0)
        report = engine.serve_trace(reqs, timeout_s=120.0)
        assert report.ok
        assert report.mismatches == 0
        assert report.throttle["chunks_admitted"] >= 1

    def test_worker_failure_raises_runtime_error(self, tmp_path):
        codec, disks = build(n_stripes=8)
        engine = ShardedServingEngine(codec, disks, failed_disk=0, n_shards=2)
        # poison the workers: an out-of-range failed disk makes every
        # ShardServer constructor raise inside its process
        engine.failed_disk = 42
        reqs = hotspot_trace(codec, failed_disk=0, count=50, rate=3000.0)
        with pytest.raises(RuntimeError, match="sharded serving run failed"):
            engine.serve_trace(reqs, timeout_s=60.0, rebuild=False)
