"""QoS primitives: percentiles, token bucket, AIMD controller."""

import time

import pytest

from repro.serving import LatencyWindow, QosController, TokenBucket, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.99) == 0.0

    def test_nearest_rank_known_values(self):
        data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0]
        assert percentile(data, 0.5) == 5.0
        assert percentile(data, 0.99) == 10.0
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 10.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 1.0) == 3.0

    def test_rejects_bad_q(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestLatencyWindow:
    def test_sliding_window_evicts(self):
        w = LatencyWindow(size=4)
        for v in (10.0, 10.0, 10.0, 10.0, 1.0, 1.0, 1.0, 1.0):
            w.record(v)
        assert len(w) == 4
        assert w.percentile(0.99) == 1.0

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            LatencyWindow(size=0)


class TestTokenBucket:
    def test_uncapped_never_blocks(self):
        b = TokenBucket(rate=None)
        assert b.acquire() == 0.0
        assert b.acquire(100.0) == 0.0

    def test_capped_rate_paces(self):
        # capacity 1 token, 200 tokens/s: 3 extra tokens need ~15ms
        b = TokenBucket(rate=200.0, capacity=1.0)
        b.acquire()  # drain the initial token
        t0 = time.perf_counter()
        for _ in range(3):
            b.acquire()
        elapsed = time.perf_counter() - t0
        assert elapsed >= 0.010

    def test_max_wait_caps_blocking_and_takes_tokens(self):
        b = TokenBucket(rate=1.0, capacity=1.0)
        b.acquire()
        t0 = time.perf_counter()
        waited = b.acquire(max_wait=0.02)
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.5
        assert waited <= 0.02 + 1e-6

    def test_set_rate_validates(self):
        b = TokenBucket(rate=1.0)
        with pytest.raises(ValueError):
            b.set_rate(0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=-1.0)
        with pytest.raises(ValueError):
            TokenBucket(capacity=0.0)


class TestQosController:
    def _controller(self, **kw):
        kw.setdefault("target_p99_ms", 5.0)
        kw.setdefault("min_samples", 4)
        kw.setdefault("adjust_interval_s", 0.0)
        return QosController(**kw)

    def _feed(self, qos, latency_s, n=8):
        for _ in range(n):
            qos.read_started()
            qos.read_finished(latency_s)

    def test_overload_throttles_to_floor(self):
        qos = self._controller()
        # one observed chunk of 10ms sets the EMA and hence the floor
        qos.before_chunk()
        time.sleep(0.01)
        qos.after_chunk()
        self._feed(qos, 0.050)  # p99 = 50ms >> 5ms target
        rate = qos.bucket.rate
        assert rate is not None
        floor = 1.0 / (qos._ema_chunk_s * (1.0 + qos.max_inflation))
        assert rate == pytest.approx(floor, rel=0.05)
        assert qos.rate_decreases >= 1

    def test_recovery_reaccelerates(self):
        qos = self._controller()
        qos.before_chunk()
        time.sleep(0.005)
        qos.after_chunk()
        self._feed(qos, 0.050)
        throttled = qos.bucket.rate
        assert throttled is not None
        # latencies recover well under target: rate must climb again
        self._feed(qos, 0.0001, n=qos.window._lat.maxlen)
        assert qos.rate_increases >= 1
        assert qos.bucket.rate is None or qos.bucket.rate > throttled

    def test_floor_bounds_pacing_inflation(self):
        # even under permanent overload the pacing delay per chunk is
        # bounded by max_inflation times the chunk duration
        qos = self._controller(max_inflation=0.5)
        for _ in range(3):
            qos.before_chunk()
            time.sleep(0.004)
            qos.after_chunk()
        self._feed(qos, 1.0, n=16)  # hopeless latencies: full throttle
        t0 = time.perf_counter()
        qos.before_chunk()
        waited = time.perf_counter() - t0
        qos.after_chunk()
        assert waited <= qos._ema_chunk_s * 0.5 + 0.05

    def test_constructor_validation(self):
        for kw in (
            {"target_p99_ms": 0.0},
            {"max_inflation": 0.0},
            {"decrease": 1.0},
            {"increase": 1.0},
            {"recover_fraction": 0.0},
            {"recover_fraction": 1.5},
        ):
            with pytest.raises(ValueError):
                QosController(**kw)

    def test_stats_keys(self):
        qos = self._controller()
        stats = qos.stats()
        for key in (
            "target_p99_ms",
            "read_p99_ms",
            "rebuild_rate",
            "ema_chunk_ms",
            "throttle_wait_s",
            "rate_decreases",
            "rate_increases",
            "chunks_admitted",
        ):
            assert key in stats

    def test_pending_reads_tracks_inflight(self):
        qos = self._controller()
        qos.read_started()
        qos.read_started()
        assert qos.pending_reads == 2
        qos.read_finished(0.001)
        assert qos.pending_reads == 1
