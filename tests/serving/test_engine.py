"""ServingEngine: byte-exact paths, coalescing, frontier races, faults."""

import threading
import time

import numpy as np
import pytest

from repro.codec import ArrayImageCodec
from repro.codes import make_code
from repro.faults import FaultPlan
from repro.serving import ServingEngine


def build(family="rdp", n_disks=7, element_size=16, n_stripes=12, seed=7):
    code = make_code(family, n_disks)
    codec = ArrayImageCodec(code, element_size=element_size, n_stripes=n_stripes)
    disks = codec.encode_image(codec.random_image(np.random.default_rng(seed)))
    return codec, disks


class TestReadPaths:
    def test_every_element_byte_exact_without_rebuild(self):
        codec, disks = build()
        original = disks.copy()
        engine = ServingEngine(codec, disks, failed_disk=2)
        lay = codec.code.layout
        for disk in range(lay.n_disks):
            for row in range(codec.n_stripes * lay.k_rows):
                assert np.array_equal(
                    engine.read(disk, row), original[disk, row]
                ), (disk, row)
        stats = engine.stats()
        assert stats["degraded"] == codec.n_stripes * lay.k_rows
        assert stats["patched"] == 0

    @pytest.mark.parametrize("family,n", [("evenodd", 7), ("cauchy_rs", 8)])
    def test_other_families(self, family, n):
        codec, disks = build(family, n, n_stripes=6)
        original = disks.copy()
        engine = ServingEngine(codec, disks, failed_disk=1)
        lay = codec.code.layout
        for row in range(codec.n_stripes * lay.k_rows):
            assert np.array_equal(engine.read(1, row), original[1, row]), row

    def test_rejects_out_of_range(self):
        codec, disks = build()
        engine = ServingEngine(codec, disks, failed_disk=0)
        with pytest.raises(IndexError):
            engine.read(99, 0)
        with pytest.raises(IndexError):
            engine.read(0, 10**6)
        with pytest.raises(IndexError):
            ServingEngine(codec, disks, failed_disk=42)

    def test_rejects_wrong_shape(self):
        codec, disks = build()
        with pytest.raises(ValueError):
            ServingEngine(codec, disks[:, :-1], failed_disk=0)


class TestRebuildIntegration:
    def test_reads_race_rebuild_and_stay_exact(self):
        codec, disks = build(n_stripes=24)
        original = disks.copy()
        engine = ServingEngine(codec, disks, failed_disk=0)
        lay = codec.code.layout
        total_rows = codec.n_stripes * lay.k_rows
        mismatches = []

        def reader(seed):
            rng = np.random.default_rng(seed)
            while not engine.rebuild_done.is_set():
                row = int(rng.integers(total_rows))
                if not np.array_equal(engine.read(0, row), original[0, row]):
                    mismatches.append(row)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(3)]
        for t in threads:
            t.start()
        engine.start_rebuild(chunk_stripes=4)
        assert engine.wait_rebuild(timeout=60.0)
        for t in threads:
            t.join(timeout=30.0)
        assert not mismatches
        assert np.array_equal(engine.rebuild_result.image, original[0])

    def test_post_rebuild_reads_served_from_patch(self):
        codec, disks = build()
        original = disks.copy()
        engine = ServingEngine(codec, disks, failed_disk=3)
        engine.start_rebuild(chunk_stripes=4)
        assert engine.wait_rebuild(timeout=60.0)
        lay = codec.code.layout
        for row in range(codec.n_stripes * lay.k_rows):
            assert np.array_equal(engine.read(3, row), original[3, row])
        stats = engine.stats()
        assert stats["patched"] == codec.n_stripes * lay.k_rows
        assert stats["degraded"] == 0

    def test_double_start_rejected(self):
        codec, disks = build()
        engine = ServingEngine(codec, disks, failed_disk=0)
        engine.start_rebuild(chunk_stripes=4)
        with pytest.raises(RuntimeError):
            engine.start_rebuild()
        assert engine.wait_rebuild(timeout=60.0)


class TestCoalescing:
    def test_concurrent_same_stripe_reads_share_one_flight(self):
        codec, disks = build()
        original = disks.copy()
        engine = ServingEngine(codec, disks, failed_disk=0)
        lay = codec.code.layout
        gate = threading.Event()
        real = engine._reconstruct_rows

        def slow_reconstruct(s, rows):
            gate.wait(timeout=30.0)
            return real(s, rows)

        engine._reconstruct_rows = slow_reconstruct
        n_readers = 4
        results = {}

        def reader(row):
            results[row] = engine.read(0, row)

        # all rows land in stripe 0 -> one leader, three followers
        threads = [
            threading.Thread(target=reader, args=(row,))
            for row in range(n_readers)
        ]
        threads[0].start()
        deadline = time.monotonic() + 10.0
        while not engine._flights and time.monotonic() < deadline:
            time.sleep(0.001)  # leader registered its flight
        for t in threads[1:]:
            t.start()
        deadline = time.monotonic() + 10.0
        while engine.n_coalesced < n_readers - 1 and time.monotonic() < deadline:
            time.sleep(0.001)
        assert engine.n_coalesced == n_readers - 1
        gate.set()
        for t in threads:
            t.join(timeout=30.0)
        for row in range(n_readers):
            assert np.array_equal(results[row], original[0, row]), row
        assert engine.n_flights <= 2  # one shared reconstruction (+1 racer)
        assert lay.k_rows >= n_readers  # sanity: all rows in stripe 0

    def test_flight_error_propagates_to_followers(self):
        codec, disks = build()
        engine = ServingEngine(codec, disks, failed_disk=0)

        def boom(s, rows):
            raise RuntimeError("injected reconstruction failure")

        engine._reconstruct_rows = boom
        with pytest.raises(RuntimeError):
            engine.read(0, 0)
        assert not engine._flights  # failed flight is cleaned up


class TestFaultPath:
    def test_lse_on_surviving_disk_served_resiliently(self):
        codec, disks = build(n_stripes=4)
        original = disks.copy()
        lay = codec.code.layout
        # latent sector error on logical disk 1 row 0, every stripe
        plan = FaultPlan.parse(
            [f"lse:1:0:{s}" for s in range(codec.n_stripes)]
        )
        engine = ServingEngine(codec, disks, failed_disk=0, fault_plan=plan)
        for row in range(codec.n_stripes * lay.k_rows):
            assert np.array_equal(engine.read(0, row), original[0, row]), row
        assert engine.n_resilient > 0

    def test_empty_fault_plan_uses_fast_path(self):
        codec, disks = build(n_stripes=4)
        engine = ServingEngine(
            codec, disks, failed_disk=0, fault_plan=FaultPlan.parse([])
        )
        assert engine.fault_store is None


class TestStats:
    def test_stats_shape(self):
        codec, disks = build()
        engine = ServingEngine(codec, disks, failed_disk=0)
        engine.read(1, 0)
        stats = engine.stats()
        assert stats["reads"] == 1
        assert stats["direct"] == 1
        assert stats["rebuild_done"] is False
        assert "qos" not in stats
