"""Open-loop frontend: trace arrays, shard partitioning, replay accounting."""

import numpy as np
import pytest

from repro.disksim.workload import Request
from repro.serving import (
    OpenLoopReport,
    partition_trace,
    replay_open_loop,
    shard_bounds,
    trace_arrays,
)


class TestTraceArrays:
    def test_sorts_and_shifts_to_zero(self):
        reqs = [
            Request(arrival_s=0.5, disk=1, row=3),
            Request(arrival_s=0.2, disk=0, row=7),
            Request(arrival_s=0.9, disk=2, row=1),
        ]
        arr, disks, rows = trace_arrays(reqs)
        assert arr[0] == 0.0
        assert np.all(np.diff(arr) >= 0)
        assert list(disks) == [0, 1, 2]
        assert list(rows) == [7, 3, 1]

    def test_stable_on_equal_arrivals(self):
        reqs = [Request(arrival_s=1.0, disk=d, row=d) for d in range(5)]
        _, disks, _ = trace_arrays(reqs)
        assert list(disks) == [0, 1, 2, 3, 4]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_arrays([])


class TestShardBounds:
    def test_bounds_cover_range_contiguously(self):
        for n_stripes in (1, 7, 48, 113):
            for n_shards in (1, 2, 3, n_stripes):
                if n_shards > n_stripes:
                    continue
                b = shard_bounds(n_stripes, n_shards)
                assert b[0] == 0 and b[-1] == n_stripes
                assert np.all(np.diff(b) >= 1)  # every shard owns >= 1 stripe
                assert len(b) == n_shards + 1

    def test_more_shards_than_stripes_yields_empty_shards(self):
        # over-provisioned shard counts are legal: surplus shards own
        # empty ranges, every stripe still lands in exactly one shard
        for n_stripes, n_shards in ((1, 3), (4, 7), (48, 49), (3, 1000)):
            b = shard_bounds(n_stripes, n_shards)
            assert b[0] == 0 and b[-1] == n_stripes
            assert len(b) == n_shards + 1
            assert np.all(np.diff(b) >= 0)
            assert int(np.diff(b).sum()) == n_stripes

    @pytest.mark.parametrize("bad", [0, -1])
    def test_out_of_range_raises(self, bad):
        with pytest.raises(ValueError):
            shard_bounds(48, bad)


class TestPartitionTrace:
    def test_partition_is_exact_and_order_preserving(self):
        k_rows, n_stripes, n_shards = 4, 12, 3
        rng = np.random.default_rng(0)
        rows = rng.integers(0, n_stripes * k_rows, size=200)
        parts = partition_trace(rows, k_rows, n_stripes, n_shards)
        seen = np.concatenate(parts)
        assert sorted(seen.tolist()) == list(range(200))  # exact cover
        bounds = shard_bounds(n_stripes, n_shards)
        for i, idx in enumerate(parts):
            assert np.all(np.diff(idx) > 0)  # global order kept per shard
            stripes = rows[idx] // k_rows
            assert np.all(stripes >= bounds[i])
            assert np.all(stripes < bounds[i + 1])

    def test_single_shard_owns_everything(self):
        rows = np.arange(40)
        (part,) = partition_trace(rows, 4, 10, 1)
        assert np.array_equal(part, np.arange(40))

    def test_oversubscribed_shards_get_empty_parts(self):
        # n_shards > n_stripes: every request still lands in exactly one
        # shard, and the surplus shards get empty index arrays
        k_rows, n_stripes, n_shards = 2, 3, 8
        rows = np.arange(n_stripes * k_rows)
        parts = partition_trace(rows, k_rows, n_stripes, n_shards)
        assert len(parts) == n_shards
        seen = np.concatenate(parts)
        assert sorted(seen.tolist()) == list(range(len(rows)))
        assert sum(1 for p in parts if len(p) == 0) == n_shards - n_stripes

    def test_explicit_bounds_override_even_split(self):
        k_rows, n_stripes = 2, 8
        rows = np.arange(n_stripes * k_rows)
        bounds = np.asarray([0, 6, 8])  # deliberately uneven
        parts = partition_trace(rows, k_rows, n_stripes, 2, bounds=bounds)
        assert np.all(rows[parts[0]] // k_rows < 6)
        assert np.all(rows[parts[1]] // k_rows >= 6)

    @pytest.mark.parametrize(
        "n_shards,bounds",
        [
            (2, [0, 8]),        # wrong length
            (2, [1, 4, 8]),     # does not start at 0
            (2, [0, 4, 7]),     # does not end at n_stripes
            (3, [0, 5, 3, 8]),  # not monotone
        ],
    )
    def test_bad_explicit_bounds_rejected(self, n_shards, bounds):
        rows = np.arange(16)
        with pytest.raises(ValueError):
            partition_trace(rows, 2, 8, n_shards, bounds=np.asarray(bounds))


class TestReplayOpenLoop:
    def _trace(self, n, rate):
        arr = np.arange(n) / rate
        disks = np.zeros(n, dtype=np.int64)
        rows = np.arange(n, dtype=np.int64)
        return arr, disks, rows

    def test_serves_all_and_verifies(self):
        arr, disks, rows = self._trace(50, rate=5000.0)
        expected = np.arange(50, dtype=np.uint8).reshape(1, 50, 1)

        def read_fn(disk, row):
            return expected[disk, row]

        report = replay_open_loop(read_fn, arr, disks, rows, expected=expected)
        assert isinstance(report, OpenLoopReport)
        assert report.ok
        assert report.served == 50
        assert report.p99_ms >= report.p50_ms >= 0.0

    def test_counts_mismatches(self):
        arr, disks, rows = self._trace(10, rate=5000.0)
        expected = np.zeros((1, 10, 1), dtype=np.uint8)

        def read_fn(disk, row):
            return np.asarray([1 if row == 3 else 0], dtype=np.uint8)

        report = replay_open_loop(read_fn, arr, disks, rows, expected=expected)
        assert report.mismatches == 1
        assert not report.ok

    def test_error_stops_replay_loudly(self):
        arr, disks, rows = self._trace(10, rate=5000.0)

        def read_fn(disk, row):
            if row == 4:
                raise RuntimeError("disk on fire")
            return np.zeros(1, dtype=np.uint8)

        report = replay_open_loop(read_fn, arr, disks, rows)
        assert report.served == 4
        assert report.errors and "disk on fire" in report.errors[0]
        assert not report.ok

    def test_latency_includes_queue_wait(self):
        """A slow server must push later requests' latency up (open loop)."""
        import time

        arr, disks, rows = self._trace(6, rate=1000.0)  # 1ms spacing

        def read_fn(disk, row):
            time.sleep(0.01)  # 10ms service >> 1ms inter-arrival
            return np.zeros(1, dtype=np.uint8)

        report = replay_open_loop(read_fn, arr, disks, rows)
        # last request queued behind ~5 earlier 10ms services
        assert report.p99_ms > 30.0
