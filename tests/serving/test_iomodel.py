"""Disk-time accounting: FIFO queueing vs preempting read priority."""

import time

import pytest

from repro.serving import NullIoModel, SimulatedDisksIoModel


class TestNullIoModel:
    def test_free(self):
        io = NullIoModel()
        assert io.read_elements({0: 5}) == 0.0
        assert io.rebuild_chunk({0: 100, 1: 100}) == 0.0


class TestSimulatedDisksIoModel:
    def test_validates_geometry(self):
        with pytest.raises(ValueError):
            SimulatedDisksIoModel(0)
        with pytest.raises(ValueError):
            SimulatedDisksIoModel(4, element_read_ms=-0.1)

    def test_single_read_costs_one_element(self):
        io = SimulatedDisksIoModel(4, element_read_ms=2.0)
        t0 = time.perf_counter()
        io.read_elements({1: 1})
        elapsed = time.perf_counter() - t0
        assert 0.001 <= elapsed < 0.5

    def test_fifo_read_queues_behind_rebuild_backlog(self):
        io = SimulatedDisksIoModel(4, element_read_ms=1.0)
        # book 30ms of rebuild backlog on disk 2 without waiting for it
        io._reserve(2, 0.030, priority=False)
        t0 = time.perf_counter()
        io.read_elements({2: 1}, priority=False)
        fifo_wait = time.perf_counter() - t0
        assert fifo_wait >= 0.015

    def test_priority_read_preempts_backlog(self):
        io = SimulatedDisksIoModel(4, element_read_ms=1.0, priority_grace_ms=1.0)
        io._reserve(2, 0.030, priority=False)
        t0 = time.perf_counter()
        io.read_elements({2: 1}, priority=True)
        prio_wait = time.perf_counter() - t0
        # grace (1ms) + own service (1ms) + scheduling slop, never the
        # full 30ms backlog
        assert prio_wait < 0.015

    def test_priority_read_pushes_backlog_back(self):
        io = SimulatedDisksIoModel(4, element_read_ms=1.0)
        done_before = io._reserve(2, 0.030, priority=False)
        io.read_elements({2: 1}, priority=True)
        assert io._busy_until[2] >= done_before  # displaced, not dropped

    def test_parallel_disks_charge_max_not_sum(self):
        io = SimulatedDisksIoModel(4, element_read_ms=5.0)
        t0 = time.perf_counter()
        io.read_elements({0: 2, 1: 2, 2: 2})  # 10ms on each of 3 disks
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.025  # parallel: ~10ms, not 30ms
