"""Degraded plan cache: correctness, memoisation, persistent warm restart."""

import numpy as np
import pytest

from repro import obs
from repro.codec import StripeCodec
from repro.codes import RdpCode
from repro.recovery import RecoveryPlanner, SchemePlanCache, serve_degraded_read
from repro.serving import DegradedPlanCache


@pytest.fixture(scope="module")
def rdp7():
    return RdpCode(7)


class TestPlanCorrectness:
    def test_plans_validate_and_serve_byte_exact(self, rdp7):
        cache = DegradedPlanCache(rdp7)
        codec = StripeCodec(rdp7, element_size=16)
        stripe = codec.encode(codec.random_data(np.random.default_rng(3)))
        lay = rdp7.layout
        for disk in range(lay.n_disks):
            for row in range(lay.k_rows):
                plan = cache.plan_for_element(disk, row)
                plan.validate(rdp7)
                assert plan.read_mask & lay.disk_mask(disk) == 0
                masked = stripe.copy()
                for _, lrow in lay.iter_elements(lay.disk_mask(disk)):
                    masked[lay.eid(disk, lrow)] = 0
                out = serve_degraded_read(rdp7, plan, masked)
                eid = lay.eid(disk, row)
                assert np.array_equal(out[eid], stripe[eid])

    def test_multi_row_plan_covers_all_rows(self, rdp7):
        cache = DegradedPlanCache(rdp7)
        lay = rdp7.layout
        plan = cache.plan_for_rows(0, [0, 3, 5])
        plan.validate(rdp7)
        for row in (0, 3, 5):
            assert lay.eid(0, row) in plan.failed_eids

    def test_memoised_plan_is_same_object(self, rdp7):
        cache = DegradedPlanCache(rdp7)
        a = cache.plan_for_element(1, 2)
        b = cache.plan_for_element(1, 2)
        assert a is b

    def test_warm_counts_all_plans(self, rdp7):
        cache = DegradedPlanCache(rdp7)
        n = cache.warm(range(rdp7.layout.n_disks))
        assert n == rdp7.layout.n_disks * rdp7.layout.k_rows
        assert len(cache) == n


class TestPersistentWarmRestart:
    def test_restart_from_store_does_zero_searches(self, rdp7, tmp_path):
        store_path = tmp_path / "plans.json"

        # first process: populate the store (searches happen here)
        store = SchemePlanCache(store_path)
        planner = RecoveryPlanner(rdp7, algorithm="u", depth=1, plan_cache=store)
        cache = DegradedPlanCache(rdp7, planner=planner, store=store)
        cache.warm(range(rdp7.layout.n_disks))

        # second process: same store, fresh planner — warm must be free
        store2 = SchemePlanCache(store_path)
        planner2 = RecoveryPlanner(rdp7, algorithm="u", depth=1, plan_cache=store2)
        cache2 = DegradedPlanCache(rdp7, planner=planner2, store=store2)
        rec = obs.enable(label="warm restart")
        try:
            cache2.warm(range(rdp7.layout.n_disks))
        finally:
            obs.disable()
        counters = {c.name: c.value for c in rec.counters.values()}
        assert counters.get("planner.schemes_generated", 0) == 0
        assert counters.get("search.expanded", 0) == 0
        assert counters.get("serving.plan_miss", 0) > 0  # memo was cold...
        # ...but every miss was answered from the store, search-free

    def test_memo_hits_counted(self, rdp7):
        cache = DegradedPlanCache(rdp7)
        cache.plan_for_element(0, 0)
        rec = obs.enable(label="memo hit")
        try:
            cache.plan_for_element(0, 0)
        finally:
            obs.disable()
        counters = {c.name: c.value for c in rec.counters.values()}
        assert counters.get("serving.plan_hit", 0) == 1
