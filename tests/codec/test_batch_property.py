"""Property test: batch recovery is byte-identical to per-stripe execution.

``BatchReconstructor.recover_batch`` (and its zero-allocation sibling
``recover_batch_into``) must agree with :func:`execute_scheme` for every
stripe of every batch — across code families, failed disks, element sizes
and batch sizes, including the degenerate batches of size 1 and 0.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import BatchReconstructor, StripeCodec, execute_scheme
from repro.recovery import scheme_for_disk

from tests.strategies import code_and_any_disk


@st.composite
def batch_case(draw):
    code, disk = draw(code_and_any_disk())
    element_size = draw(st.sampled_from([1, 3, 16]))
    n_stripes = draw(st.integers(0, 5))
    seed = draw(st.integers(0, 2**16))
    return code, disk, element_size, n_stripes, seed


def encode_batch(code, element_size, n_stripes, seed):
    codec = StripeCodec(code, element_size)
    rng = np.random.default_rng(seed)
    return np.stack(
        [codec.encode(codec.random_data(rng)) for _ in range(n_stripes)]
    ) if n_stripes else np.zeros(
        (0, code.layout.n_elements, element_size), dtype=np.uint8
    )


class TestBatchMatchesPerStripe:
    @settings(max_examples=60, deadline=None)
    @given(batch_case())
    def test_recover_batch_byte_identical(self, case):
        code, disk, element_size, n_stripes, seed = case
        scheme = scheme_for_disk(code, disk, algorithm="u", depth=1)
        stripes = encode_batch(code, element_size, n_stripes, seed)
        batch_out = BatchReconstructor(scheme).recover_batch(stripes)

        assert set(batch_out) == set(scheme.failed_eids)
        for s in range(n_stripes):
            per_stripe = execute_scheme(scheme, stripes[s])
            for eid, data in per_stripe.items():
                assert np.array_equal(batch_out[eid][s], data), (eid, s)

    @settings(max_examples=30, deadline=None)
    @given(batch_case())
    def test_recover_batch_into_matches_recover_batch(self, case):
        code, disk, element_size, n_stripes, seed = case
        scheme = scheme_for_disk(code, disk, algorithm="u", depth=1)
        stripes = encode_batch(code, element_size, n_stripes, seed)
        recon = BatchReconstructor(scheme)
        expected = recon.recover_batch(stripes)
        out = np.empty(
            (n_stripes, len(scheme.failed_eids), element_size), dtype=np.uint8
        )
        returned = recon.recover_batch_into(stripes, out)
        assert returned is out
        for slot, eid in enumerate(scheme.failed_eids):
            assert np.array_equal(out[:, slot, :], expected[eid]), eid

    def test_batch_size_zero_and_one_explicit(self):
        from repro.codes import make_code

        code = make_code("rdp", 7)
        scheme = scheme_for_disk(code, 0, algorithm="u", depth=1)
        recon = BatchReconstructor(scheme)
        for n in (0, 1):
            stripes = encode_batch(code, 8, n, seed=n)
            got = recon.recover_batch(stripes)
            for eid, data in got.items():
                assert data.shape == (n, 8)
                for s in range(n):
                    assert np.array_equal(
                        data[s], execute_scheme(scheme, stripes[s])[eid]
                    )
