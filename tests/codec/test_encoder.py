"""Tests for the stripe encoder."""

import numpy as np
import pytest

from repro.codec import StripeCodec
from repro.codes import CauchyRSCode, EvenOddCode, RdpCode, StarCode


@pytest.fixture(scope="module")
def codec():
    return StripeCodec(RdpCode(5), element_size=32)


class TestEncode:
    def test_stripe_shape(self, codec):
        stripe = codec.encode(codec.random_data(np.random.default_rng(0)))
        lay = codec.code.layout
        assert stripe.shape == (lay.n_elements, 32)

    def test_data_passthrough(self, codec):
        data = codec.random_data(np.random.default_rng(1))
        stripe = codec.encode(data)
        lay = codec.code.layout
        assert np.array_equal(stripe[: lay.n_data_elements], data)

    def test_equations_hold_bytewise(self, codec):
        stripe = codec.encode(codec.random_data(np.random.default_rng(2)))
        assert codec.check_stripe(stripe)

    def test_corruption_detected(self, codec):
        stripe = codec.encode(codec.random_data(np.random.default_rng(3)))
        stripe[0, 0] ^= 0xFF
        assert not codec.check_stripe(stripe)

    def test_bad_data_shape_rejected(self, codec):
        with pytest.raises(ValueError, match="shape"):
            codec.encode(np.zeros((3, 32), dtype=np.uint8))

    def test_bad_element_size_rejected(self):
        with pytest.raises(ValueError):
            StripeCodec(RdpCode(5), element_size=0)

    def test_zero_data_gives_zero_parity(self, codec):
        lay = codec.code.layout
        data = np.zeros((lay.n_data_elements, 32), dtype=np.uint8)
        stripe = codec.encode(data)
        assert not stripe.any()

    @pytest.mark.parametrize(
        "code_factory",
        [
            lambda: EvenOddCode(5),
            lambda: StarCode(5),
            lambda: CauchyRSCode(4, 3, w=4),
        ],
        ids=["evenodd", "star", "cauchy"],
    )
    def test_all_families_encode_consistently(self, code_factory):
        code = code_factory()
        codec = StripeCodec(code, element_size=16)
        stripe = codec.encode(codec.random_data(np.random.default_rng(4)))
        assert codec.check_stripe(stripe)

    def test_linearity(self, codec):
        """XOR of two codewords is a codeword."""
        rng = np.random.default_rng(5)
        a = codec.encode(codec.random_data(rng))
        b = codec.encode(codec.random_data(rng))
        assert codec.check_stripe(a ^ b)
