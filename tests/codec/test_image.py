"""Tests for the rotated whole-array image codec."""

import numpy as np
import pytest

from repro.codec.image import ArrayImageCodec
from repro.codes import EvenOddCode, RdpCode, StarCode
from repro.recovery import RecoveryPlanner


@pytest.fixture(scope="module")
def rdp5():
    return RdpCode(5)


@pytest.fixture(scope="module")
def codec(rdp5):
    return ArrayImageCodec(rdp5, element_size=16, n_stripes=rdp5.layout.n_disks)


@pytest.fixture(scope="module")
def image_and_disks(codec):
    data = codec.random_image(np.random.default_rng(77))
    return data, codec.encode_image(data)


class TestLayout:
    def test_rotation_roundtrip(self, codec):
        lay = codec.code.layout
        for s in range(codec.n_stripes):
            for logical in range(lay.n_disks):
                phys = codec.physical_disk(logical, s)
                assert codec.logical_role(phys, s) == logical

    def test_full_stack_covers_all_roles(self, codec):
        """Across one stack, each physical disk plays every logical role."""
        lay = codec.code.layout
        for phys in range(lay.n_disks):
            roles = {codec.logical_role(phys, s) for s in range(lay.n_disks)}
            assert roles == set(range(lay.n_disks))

    def test_bad_stripe_count(self, rdp5):
        with pytest.raises(ValueError):
            ArrayImageCodec(rdp5, n_stripes=0)


class TestEncodeDecode:
    def test_roundtrip(self, codec, image_and_disks):
        data, disks = image_and_disks
        assert np.array_equal(codec.decode_image(disks), data)

    def test_disk_shapes(self, codec, image_and_disks):
        _, disks = image_and_disks
        lay = codec.code.layout
        assert disks.shape == (
            lay.n_disks,
            codec.n_stripes * lay.k_rows,
            codec.element_size,
        )

    def test_bad_buffer_rejected(self, codec):
        with pytest.raises(ValueError, match="flat buffer"):
            codec.encode_image(np.zeros(10, dtype=np.uint8))

    def test_each_logical_stripe_is_codeword(self, codec, image_and_disks):
        _, disks = image_and_disks
        for s in range(codec.n_stripes):
            stripe = codec._logical_stripe(disks, s)
            assert codec.codec.check_stripe(stripe)


class TestRecovery:
    @pytest.mark.parametrize("failed", [0, 3, 5])  # data and parity positions
    def test_rebuild_any_physical_disk(self, codec, image_and_disks, failed):
        _, disks = image_and_disks
        assert codec.verify_recovery(disks, failed)

    def test_out_of_range(self, codec, image_and_disks):
        _, disks = image_and_disks
        with pytest.raises(IndexError):
            codec.recover_disk(disks, 99)

    def test_read_counts_balanced_for_u(self, rdp5, image_and_disks):
        """Over a full stack, U-schemes spread physical reads evenly."""
        _, disks = image_and_disks
        codec = ArrayImageCodec(rdp5, element_size=16, n_stripes=rdp5.layout.n_disks)
        planner = RecoveryPlanner(rdp5, algorithm="u", depth=1)
        result = codec.recover_disk(disks, 0, planner)
        reads = [c for d, c in enumerate(result["reads_per_disk"]) if d != 0]
        # every surviving disk participates; spread within a modest factor
        assert min(reads) > 0
        assert max(reads) <= 2 * min(reads)

    def test_khan_vs_u_total_reads(self, rdp5, image_and_disks):
        """Over a full stack the rotation equalises per-physical-disk totals
        for any scheme family (each disk plays every role once), so the
        load-balance benefit lives *within* stripes, not in the aggregate:
        the aggregate only reflects total read volume."""
        _, disks = image_and_disks
        codec = ArrayImageCodec(rdp5, element_size=16, n_stripes=rdp5.layout.n_disks)
        khan = codec.recover_disk(disks, 0, RecoveryPlanner(rdp5, "khan", depth=1))
        u = codec.recover_disk(disks, 0, RecoveryPlanner(rdp5, "u", depth=1))
        assert sum(u["reads_per_disk"]) >= sum(khan["reads_per_disk"])
        # rotation equalises: surviving disks differ by at most the per-role
        # variation of a single stripe
        survivors = [c for d, c in enumerate(u["reads_per_disk"]) if d != 0]
        assert max(survivors) - min(survivors) <= rdp5.layout.k_rows

    def test_other_codes(self):
        for code in (EvenOddCode(5), StarCode(5)):
            codec = ArrayImageCodec(code, element_size=8, n_stripes=4)
            data = codec.random_image(np.random.default_rng(9))
            disks = codec.encode_image(data)
            assert codec.verify_recovery(disks, 1)
