"""Tests for the vectorized batch reconstructor."""

import numpy as np
import pytest

from repro.codec import StripeCodec, execute_scheme
from repro.codec.batch import BatchReconstructor
from repro.codes import CauchyRSCode, RdpCode
from repro.recovery import u_scheme


@pytest.fixture(scope="module")
def rdp5():
    return RdpCode(5)


@pytest.fixture(scope="module")
def batch(rdp5):
    codec = StripeCodec(rdp5, element_size=32)
    rng = np.random.default_rng(3)
    return np.stack([codec.encode(codec.random_data(rng)) for _ in range(6)])


class TestBatchReconstructor:
    def test_matches_scalar_path(self, rdp5, batch):
        scheme = u_scheme(rdp5, 0, depth=1)
        recon = BatchReconstructor(scheme)
        out = recon.recover_batch(batch)
        for s in range(batch.shape[0]):
            scalar = execute_scheme(scheme, batch[s])
            for eid, data in scalar.items():
                assert np.array_equal(out[eid][s], data)

    def test_verify_batch(self, rdp5, batch):
        assert BatchReconstructor(u_scheme(rdp5, 0, depth=1)).verify_batch(batch)

    def test_detects_corruption(self, rdp5, batch):
        damaged = batch.copy()
        damaged[2, rdp5.layout.eid(1, 0), 0] ^= 0xFF  # corrupt a survivor
        assert not BatchReconstructor(u_scheme(rdp5, 0, depth=1)).verify_batch(
            damaged
        )

    def test_shape_validation(self, rdp5, batch):
        recon = BatchReconstructor(u_scheme(rdp5, 0, depth=1))
        with pytest.raises(ValueError):
            recon.recover_batch(batch[0])
        with pytest.raises(ValueError):
            recon.recover_batch(batch[:, :3, :])

    def test_iteration_chains_vectorize(self):
        """Schemes whose equations feed on earlier recovered elements work
        batched too (Cauchy codes exercise that path)."""
        code = CauchyRSCode(4, 2, w=4)
        codec = StripeCodec(code, element_size=16)
        rng = np.random.default_rng(4)
        stripes = np.stack(
            [codec.encode(codec.random_data(rng)) for _ in range(4)]
        )
        for disk in range(4):
            scheme = u_scheme(code, disk, depth=1)
            assert BatchReconstructor(scheme).verify_batch(stripes)

    def test_single_stripe_batch(self, rdp5):
        codec = StripeCodec(rdp5, element_size=8)
        stripes = codec.encode(codec.random_data(np.random.default_rng(5)))[None]
        assert BatchReconstructor(u_scheme(rdp5, 1, depth=1)).verify_batch(stripes)

    def test_inplace_accumulator_matches_reference(self, rdp5):
        """The out=-accumulating fold equals a naive reduce on random bytes.

        Random (non-codeword) stripes exercise the XOR arithmetic itself,
        independent of whether the scheme actually reconstructs anything.
        """
        rng = np.random.default_rng(11)
        stripes = rng.integers(
            0, 256, size=(5, rdp5.layout.n_elements, 16), dtype=np.uint8
        )
        scheme = u_scheme(rdp5, 0, depth=1)
        out = BatchReconstructor(scheme).recover_batch(stripes)
        # reference: per failed element, XOR-reduce every equation member
        # (survivors from the stripes, earlier failed from the reference
        # outputs), exactly as the plan defines
        ref = {}
        for f, eq in zip(scheme.failed_eids, scheme.equations):
            acc = np.zeros((5, 16), dtype=np.uint8)
            m = eq & ~(1 << f)
            while m:
                low = m & -m
                eid = low.bit_length() - 1
                m ^= low
                src = ref[eid] if (scheme.failed_mask >> eid) & 1 else stripes[:, eid, :]
                acc = acc ^ src
            ref[f] = acc
        assert set(out) == set(ref)
        for eid in ref:
            assert np.array_equal(out[eid], ref[eid])
