"""Property suite pinning the batched-XOR C kernel to the Python paths.

The kernel (:func:`repro.recovery.ckernel.xor_batch`) must be
byte-identical to both the numpy fold (``_recover_into_numpy``) and the
per-element Python executor (:func:`execute_scheme`) on every plan —
including the degenerate cases the dispatch logic special-cases: empty
batches, single elements, zero-source slots, and the pure-Python
fallback leg (``REPRO_PURE_PYTHON=1`` / no compiler), which must produce
the same bytes through ``recover_batch_into`` without the kernel.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codec import BatchReconstructor, StripeCodec, execute_scheme
from repro.recovery import ckernel, scheme_for_disk

from tests.strategies import code_and_any_disk

kernel = pytest.mark.skipif(
    not ckernel.xor_available(), reason="C kernel unavailable (no compiler?)"
)


@st.composite
def batch_case(draw):
    code, disk = draw(code_and_any_disk())
    element_size = draw(st.sampled_from([1, 7, 16, 64]))
    n_stripes = draw(st.integers(0, 6))
    seed = draw(st.integers(0, 2**16))
    return code, disk, element_size, n_stripes, seed


def encode_batch(code, element_size, n_stripes, seed):
    codec = StripeCodec(code, element_size)
    rng = np.random.default_rng(seed)
    if not n_stripes:
        return np.zeros((0, code.layout.n_elements, element_size), dtype=np.uint8)
    return np.stack(
        [codec.encode(codec.random_data(rng)) for _ in range(n_stripes)]
    )


def run_both(recon, stripes):
    """(kernel-or-dispatch output, pure-numpy output) for one batch."""
    n_failed = len(recon.scheme.failed_eids)
    shape = (stripes.shape[0], n_failed, stripes.shape[2])
    out_dispatch = np.empty(shape, dtype=np.uint8)
    out_numpy = np.empty(shape, dtype=np.uint8)
    recon.recover_batch_into(stripes, out_dispatch)
    recon._recover_into_numpy(stripes, out_numpy)
    return out_dispatch, out_numpy


class TestKernelByteIdentity:
    @kernel
    @settings(max_examples=60, deadline=None)
    @given(batch_case())
    def test_kernel_matches_numpy_and_per_element(self, case):
        code, disk, element_size, n_stripes, seed = case
        scheme = scheme_for_disk(code, disk, algorithm="u", depth=1)
        stripes = encode_batch(code, element_size, n_stripes, seed)
        recon = BatchReconstructor(scheme)
        out_dispatch, out_numpy = run_both(recon, stripes)
        assert np.array_equal(out_dispatch, out_numpy)
        for s in range(n_stripes):
            per_element = execute_scheme(scheme, stripes[s])
            for slot, eid in enumerate(scheme.failed_eids):
                assert np.array_equal(out_dispatch[s, slot], per_element[eid]), (
                    s,
                    eid,
                )

    @kernel
    @settings(max_examples=30, deadline=None)
    @given(batch_case())
    def test_kernel_on_random_noncodeword_bytes(self, case):
        """XOR arithmetic alone, independent of valid-codeword structure."""
        code, disk, element_size, n_stripes, seed = case
        scheme = scheme_for_disk(code, disk, algorithm="u", depth=1)
        rng = np.random.default_rng(seed)
        stripes = rng.integers(
            0,
            256,
            size=(n_stripes, code.layout.n_elements, element_size),
            dtype=np.uint8,
        )
        recon = BatchReconstructor(scheme)
        out_dispatch, out_numpy = run_both(recon, stripes)
        assert np.array_equal(out_dispatch, out_numpy)

    @kernel
    def test_empty_batch_and_single_element(self):
        from repro.codes import make_code

        code = make_code("rdp", 5)
        scheme = scheme_for_disk(code, 0, algorithm="u", depth=1)
        recon = BatchReconstructor(scheme)
        for n, esz in ((0, 1), (0, 16), (1, 1), (1, 16)):
            stripes = encode_batch(code, esz, n, seed=n)
            out_dispatch, out_numpy = run_both(recon, stripes)
            assert np.array_equal(out_dispatch, out_numpy)

    @kernel
    def test_direct_wrapper_agrees_with_wrapper_fallbacks(self):
        """xor_batch on valid buffers returns True and fills out correctly;
        non-contiguous or non-uint8 buffers are refused (False), and the
        dispatch layer then serves them through numpy with equal bytes."""
        from repro.codes import make_code

        code = make_code("rdp", 7)
        scheme = scheme_for_disk(code, 2, algorithm="u", depth=1)
        recon = BatchReconstructor(scheme)
        stripes = encode_batch(code, 32, 4, seed=9)
        shape = (4, len(scheme.failed_eids), 32)
        out = np.empty(shape, dtype=np.uint8)
        assert ckernel.xor_batch(stripes, out, recon._src_off, recon._src_ids)
        ref = np.empty(shape, dtype=np.uint8)
        recon._recover_into_numpy(stripes, ref)
        assert np.array_equal(out, ref)

        # non-contiguous input: wrapper refuses, dispatch still serves it
        strided = np.ascontiguousarray(
            np.repeat(stripes, 2, axis=2)
        )[:, :, ::2]
        assert not strided.flags.c_contiguous
        assert not ckernel.xor_batch(strided, out, recon._src_off, recon._src_ids)
        got = np.empty(shape, dtype=np.uint8)
        recon.recover_batch_into(strided, got)
        assert np.array_equal(got, ref)


class TestPurePythonFallback:
    @pytest.fixture
    def no_kernel(self, monkeypatch):
        """Force the REPRO_PURE_PYTHON code path without re-importing."""
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        monkeypatch.setattr(ckernel, "_lib", None)
        monkeypatch.setattr(ckernel, "_load_attempted", True)
        yield
        # monkeypatch restores _lib/_load_attempted automatically

    def test_fallback_byte_identical(self, no_kernel):
        from repro.codes import make_code

        assert not ckernel.xor_available()
        code = make_code("rdp", 7)
        scheme = scheme_for_disk(code, 1, algorithm="u", depth=1)
        stripes = encode_batch(code, 16, 5, seed=3)
        recon = BatchReconstructor(scheme)
        shape = (5, len(scheme.failed_eids), 16)
        out = np.empty(shape, dtype=np.uint8)
        recon.recover_batch_into(stripes, out)
        for s in range(5):
            per_element = execute_scheme(scheme, stripes[s])
            for slot, eid in enumerate(scheme.failed_eids):
                assert np.array_equal(out[s, slot], per_element[eid])

    def test_wrapper_reports_fallback(self, no_kernel):
        stripes = np.zeros((1, 4, 8), dtype=np.uint8)
        out = np.zeros((1, 1, 8), dtype=np.uint8)
        off = np.asarray([0, 1], dtype=np.int64)
        ids = np.asarray([0], dtype=np.int32)
        assert ckernel.xor_batch(stripes, out, off, ids) is False
