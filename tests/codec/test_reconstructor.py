"""Tests for scheme execution and byte-exact recovery."""

import numpy as np
import pytest

from repro.codec import Reconstructor, StripeCodec, execute_scheme
from repro.codec.verify import verify_scheme_on_random_data
from repro.codes import EvenOddCode, RdpCode, StarCode, make_code
from repro.recovery import c_scheme, khan_scheme, naive_scheme, u_scheme


@pytest.fixture(scope="module")
def rdp5():
    return RdpCode(5)


@pytest.fixture(scope="module")
def stripe_and_codec(rdp5):
    codec = StripeCodec(rdp5, element_size=64)
    stripe = codec.encode(codec.random_data(np.random.default_rng(11)))
    return stripe, codec


class TestExecuteScheme:
    def test_recovers_exact_bytes(self, rdp5, stripe_and_codec):
        stripe, _ = stripe_and_codec
        scheme = u_scheme(rdp5, 0)
        recovered = execute_scheme(scheme, stripe)
        assert set(recovered) == set(scheme.failed_eids)
        for eid, data in recovered.items():
            assert np.array_equal(data, stripe[eid])

    def test_wrong_stripe_shape(self, rdp5):
        scheme = u_scheme(rdp5, 0)
        with pytest.raises(ValueError, match="elements"):
            execute_scheme(scheme, np.zeros((3, 8), dtype=np.uint8))

    def test_never_reads_failed_bytes(self, rdp5, stripe_and_codec):
        """Zeroing the failed disk's stored bytes must not change results."""
        stripe, _ = stripe_and_codec
        scheme = khan_scheme(rdp5, 1)
        blanked = stripe.copy()
        for eid in scheme.failed_eids:
            blanked[eid] = 0
        out = execute_scheme(scheme, blanked)
        for eid, data in out.items():
            assert np.array_equal(data, stripe[eid])


class TestReconstructor:
    def test_counters(self, rdp5, stripe_and_codec):
        stripe, _ = stripe_and_codec
        scheme = c_scheme(rdp5, 0)
        recon = Reconstructor(scheme)
        recon.recover_stripe(stripe)
        recon.recover_stripe(stripe)
        assert recon.stripes_recovered == 2
        assert recon.elements_read == 2 * scheme.total_reads

    def test_recover_and_patch(self, rdp5, stripe_and_codec):
        stripe, codec = stripe_and_codec
        scheme = u_scheme(rdp5, 2)
        damaged = stripe.copy()
        for eid in scheme.failed_eids:
            damaged[eid] = 0xAA
        recon = Reconstructor(scheme)
        patched = recon.recover_and_patch(damaged)
        assert np.array_equal(patched, stripe)
        assert codec.check_stripe(patched)

    def test_verify_stripe(self, rdp5, stripe_and_codec):
        stripe, _ = stripe_and_codec
        assert Reconstructor(u_scheme(rdp5, 0)).verify_stripe(stripe)


class TestRecoverAndPatchOut:
    """The ``out=`` in-place variant, and the copying default's contract."""

    def _damaged(self, stripe, scheme, fill=0xAA):
        damaged = stripe.copy()
        for eid in scheme.failed_eids:
            damaged[eid] = fill
        return damaged

    def test_default_still_copies(self, rdp5, stripe_and_codec):
        """The original API: input untouched, fresh buffer returned."""
        stripe, _ = stripe_and_codec
        scheme = u_scheme(rdp5, 1)
        damaged = self._damaged(stripe, scheme)
        snapshot = damaged.copy()
        patched = Reconstructor(scheme).recover_and_patch(damaged)
        assert patched is not damaged
        assert not np.shares_memory(patched, damaged)
        assert np.array_equal(damaged, snapshot)  # input byte-untouched
        assert np.array_equal(patched, stripe)

    def test_out_is_stripe_patches_in_place(self, rdp5, stripe_and_codec):
        stripe, _ = stripe_and_codec
        scheme = u_scheme(rdp5, 3)
        damaged = self._damaged(stripe, scheme)
        returned = Reconstructor(scheme).recover_and_patch(damaged, out=damaged)
        assert returned is damaged
        assert np.array_equal(damaged, stripe)

    def test_out_separate_buffer(self, rdp5, stripe_and_codec):
        stripe, _ = stripe_and_codec
        scheme = u_scheme(rdp5, 0)
        damaged = self._damaged(stripe, scheme)
        out = np.zeros_like(damaged)
        returned = Reconstructor(scheme).recover_and_patch(damaged, out=out)
        assert returned is out
        assert np.array_equal(out, stripe)
        # survivors were copied through, input untouched
        assert np.array_equal(
            damaged, self._damaged(stripe, scheme)
        )

    def test_out_and_default_agree(self, rdp5, stripe_and_codec):
        stripe, _ = stripe_and_codec
        scheme = u_scheme(rdp5, 2)
        damaged = self._damaged(stripe, scheme)
        copied = Reconstructor(scheme).recover_and_patch(damaged)
        inplace = Reconstructor(scheme).recover_and_patch(
            damaged.copy(), out=damaged.copy()
        )
        assert np.array_equal(copied, inplace)

    def test_out_shape_mismatch(self, rdp5, stripe_and_codec):
        stripe, _ = stripe_and_codec
        scheme = u_scheme(rdp5, 0)
        with pytest.raises(ValueError, match="out shape"):
            Reconstructor(scheme).recover_and_patch(
                stripe, out=np.zeros((2, 2), dtype=np.uint8)
            )


class TestVerifyHelper:
    @pytest.mark.parametrize("family", ["rdp", "evenodd", "star", "liberation"])
    @pytest.mark.parametrize("alg", [naive_scheme, khan_scheme, c_scheme, u_scheme])
    def test_all_algorithms_all_families(self, family, alg):
        code = make_code(family, 7)
        scheme = alg(code, 0)
        assert verify_scheme_on_random_data(code, scheme, seed=21)

    def test_parity_disk_recovery(self):
        code = EvenOddCode(5)
        for parity_disk in code.layout.parity_disks:
            scheme = u_scheme(code, parity_disk)
            assert verify_scheme_on_random_data(code, scheme, seed=22)

    def test_multiple_stripes(self):
        code = StarCode(5)
        scheme = u_scheme(code, 0)
        assert verify_scheme_on_random_data(
            code, scheme, element_size=16, n_stripes=5, seed=23
        )
