"""Tests for the repro-recovery CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_family(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scheme", "--family", "nope"])


class TestCommands:
    def test_families(self, capsys):
        assert main(["families"]) == 0
        out = capsys.readouterr().out
        assert "rdp" in out and "star" in out

    def test_scheme_renders(self, capsys):
        assert main(["scheme", "--family", "rdp", "--disks", "7",
                     "--algorithm", "u"]) == 0
        out = capsys.readouterr().out
        assert "u-scheme" in out
        assert "X" in out  # failed markers in the stripe picture

    def test_naive_scheme(self, capsys):
        assert main(["scheme", "--family", "evenodd", "--disks", "7",
                     "--algorithm", "naive"]) == 0
        assert "naive-scheme" in capsys.readouterr().out

    def test_verify(self, capsys):
        assert main(["verify", "--family", "rdp", "--disks", "7"]) == 0
        assert "byte-exact" in capsys.readouterr().out

    def test_simulate(self, capsys):
        assert main(["simulate", "--family", "rdp", "--disks", "7"]) == 0
        out = capsys.readouterr().out
        assert "MB/s" in out
        assert "khan" in out

    def test_figure3_small_range(self, capsys, tmp_path):
        assert main(["figure3", "--family", "evenodd", "--min-disks", "7",
                     "--max-disks", "8", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out and "khan" in out

    def test_figure4_small_range(self, capsys, tmp_path):
        assert main(["figure4", "--family", "rdp", "--min-disks", "7",
                     "--max-disks", "8", "--cache-dir", str(tmp_path)]) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_figure3_with_plot(self, capsys, tmp_path):
        assert main(["figure3", "--family", "rdp", "--min-disks", "7",
                     "--max-disks", "8", "--cache-dir", str(tmp_path),
                     "--plot"]) == 0
        out = capsys.readouterr().out
        assert "o=khan" in out  # the ASCII chart legend

    def test_stats(self, capsys):
        assert main(["stats", "--family", "rdp", "--disks", "7"]) == 0
        out = capsys.readouterr().out
        assert "overlap" in out and "naive" in out

    def test_degraded(self, capsys):
        assert main(["degraded", "--family", "rdp", "--disks", "8",
                     "--failed-disk", "0", "--rows", "1,3"]) == 0
        out = capsys.readouterr().out
        assert "degraded read of rows [1, 3]" in out
        assert "X" in out

    def test_validate(self, capsys):
        assert main(["validate", "--family", "star", "--disks", "8"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "fault tolerance=3" in out

    def test_recover_clean(self, capsys):
        assert main(["recover", "--family", "rdp", "--disks", "7",
                     "--failed-disk", "0", "--stripes", "2"]) == 0
        out = capsys.readouterr().out
        assert "no faults" in out
        assert "recovered data byte-exact" in out

    def test_recover_with_injected_faults(self, capsys):
        assert main(["recover", "--family", "rdp", "--disks", "7",
                     "--failed-disk", "0", "--stripes", "3",
                     "--inject", "lse:2:1:0", "--inject", "die:4:2"]) == 0
        out = capsys.readouterr().out
        assert "latent sector error" in out
        assert "ESCALATED at stripe 2" in out
        assert "recovered data byte-exact" in out

    def test_recover_bad_spec_exits_2(self, capsys):
        assert main(["recover", "--family", "rdp", "--disks", "7",
                     "--failed-disk", "0", "--inject", "nope:1:2"]) == 2
        assert "bad fault spec" in capsys.readouterr().err

    def test_recover_beyond_tolerance_exits_1(self, capsys):
        assert main(["recover", "--family", "rdp", "--disks", "7",
                     "--failed-disk", "0", "--stripes", "3",
                     "--inject", "die:2:1", "--inject", "die:3:2"]) == 1
        assert "UNRECOVERABLE" in capsys.readouterr().out

    def test_serve_hotspot_with_qos(self, capsys, tmp_path):
        store = tmp_path / "plans.json"
        assert main(["serve", "--family", "rdp", "--disks", "7",
                     "--stripes", "14", "--element-size", "32",
                     "--requests", "100", "--clients", "2",
                     "--chunk-stripes", "7", "--element-read-ms", "0.1",
                     "--plan-cache", str(store)]) == 0
        out = capsys.readouterr().out
        assert "qos" in out
        assert "byte-exact" in out
        assert store.exists()

    def test_serve_sequential_no_qos(self, capsys):
        assert main(["serve", "--family", "rdp", "--disks", "7",
                     "--stripes", "14", "--element-size", "32",
                     "--requests", "100", "--workload", "sequential",
                     "--no-qos", "--chunk-stripes", "7",
                     "--element-read-ms", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "qos off" in out
        assert "byte-exact" in out

    def test_serve_with_faults(self, capsys):
        assert main(["serve", "--family", "rdp", "--disks", "7",
                     "--stripes", "7", "--element-size", "32",
                     "--requests", "60", "--chunk-stripes", "7",
                     "--element-read-ms", "0.1",
                     "--inject", "lse:1:0:0"]) == 0
        assert "byte-exact" in capsys.readouterr().out

    def test_serve_rejects_bad_inject(self, capsys):
        assert main(["serve", "--family", "rdp", "--disks", "7",
                     "--inject", "nonsense"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_trace_writes_valid_jsonl(self, capsys, tmp_path):
        from repro.obs import validate_trace_file

        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--family", "rdp", "--disks", "7",
                     "--out", str(out)]) == 0
        assert "trace written to" in capsys.readouterr().out
        counts = validate_trace_file(out)
        assert counts["meta"] == 1
        assert counts["span"] >= 3   # pipeline, verify, simulate at least
        assert counts["counter"] >= 1

    def test_trace_validate_roundtrip(self, capsys, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(["trace", "--family", "evenodd", "--disks", "7",
                     "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", "--validate", str(out)]) == 0
        assert "valid repro-trace/1" in capsys.readouterr().out

    def test_trace_validate_rejects_garbage(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "span"}\n')
        assert main(["trace", "--validate", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_profile_prints_stage_breakdown(self, capsys):
        assert main(["--profile", "scheme", "--family", "rdp",
                     "--disks", "7"]) == 0
        out = capsys.readouterr().out
        assert "stage breakdown" in out
        assert "search.generate" in out
        assert "counters:" in out

    def test_profile_leaves_recorder_disabled(self, capsys):
        from repro import obs

        assert main(["--profile", "families"]) == 0
        assert not obs.enabled()

    def test_report_small(self, capsys, tmp_path):
        out_file = tmp_path / "r.md"
        assert main(["report", "--min-disks", "7", "--max-disks", "7",
                     "--cache-dir", str(tmp_path), "--no-reliability",
                     "--output", str(out_file)]) == 0
        assert out_file.exists()
        text = out_file.read_text()
        assert "Reproduction report" in text

    def test_rebuild_inline(self, capsys):
        assert main(["rebuild", "--family", "rdp", "--disks", "7",
                     "--stripes", "16", "--element-size", "64",
                     "--workers", "1", "--chunk-stripes", "4"]) == 0
        out = capsys.readouterr().out
        assert "inline-batch" in out
        assert "MB/s" in out
        assert "byte-exact" in out

    def test_rebuild_parallel_with_plan_cache(self, capsys, tmp_path):
        store = tmp_path / "plans.json"
        args = ["rebuild", "--family", "evenodd", "--disks", "7",
                "--failed-disk", "2", "--stripes", "24",
                "--element-size", "64", "--workers", "2",
                "--chunk-stripes", "3", "--plan-cache", str(store)]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "pipeline" in out
        assert "miss(es)" in out
        assert store.exists()
        # warm run served from the on-disk store
        assert main(args) == 0
        assert "0 miss(es)" in capsys.readouterr().out

    def test_rebuild_pool_placement(self, capsys):
        assert main(["rebuild", "--family", "rdp", "--disks", "7",
                     "--placement", "declustered", "--pool-disks", "64",
                     "--stripes", "400", "--element-size", "16",
                     "--failed-disk", "3", "--chunk-stripes", "64"]) == 0
        out = capsys.readouterr().out
        assert "pool    : 64 disks" in out
        assert "flat" in out and "declustered" in out
        assert "lower max-per-disk load than flat" in out
        assert "MISMATCH" not in out

    def test_rebuild_pool_flat_baseline_only(self, capsys):
        assert main(["rebuild", "--family", "rdp", "--disks", "5",
                     "--placement", "flat", "--pool-disks", "24",
                     "--stripes", "60", "--element-size", "16"]) == 0
        out = capsys.readouterr().out
        assert out.count("byte-exact") == 1  # no comparison row

    def test_serve_placement_requires_shards(self, capsys):
        assert main(["serve", "--family", "rdp", "--disks", "7",
                     "--placement", "d3"]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_fleet_table(self, capsys):
        assert main(["fleet", "--family", "rdp", "--disks", "5",
                     "--pool-disks", "24", "--stripes", "100",
                     "--trials", "30", "--mttf-hours", "1500",
                     "--capacity-scale", "1e6"]) == 0
        out = capsys.readouterr().out
        assert "p(loss)" in out
        assert "declustered" in out and "flat" in out

    def test_fleet_both_engines_agree(self, capsys):
        assert main(["fleet", "--family", "rdp", "--disks", "5",
                     "--pool-disks", "24", "--stripes", "100",
                     "--trials", "25", "--mttf-hours", "1200",
                     "--capacity-scale", "1e6", "--engine", "both"]) == 0
        captured = capsys.readouterr()
        assert "engines agree" in captured.out
        assert "MISMATCH" not in captured.out


class TestErrorContract:
    """Unknown families / invalid geometry: one-line stderr, exit 2."""

    def _assert_exit_2(self, capsys, argv):
        assert main(argv) == 2
        captured = capsys.readouterr()
        err = captured.err.strip()
        assert err.startswith("error:"), err
        assert "\n" not in err  # exactly one line
        assert "Traceback" not in captured.err

    def test_scheme_invalid_geometry(self, capsys):
        # xcode needs a prime disk count
        self._assert_exit_2(
            capsys, ["scheme", "--family", "xcode", "--disks", "8"]
        )

    def test_scheme_failed_disk_out_of_range(self, capsys):
        self._assert_exit_2(
            capsys,
            ["scheme", "--family", "rdp", "--disks", "7",
             "--failed-disk", "99"],
        )

    def test_verify_invalid_geometry(self, capsys):
        self._assert_exit_2(
            capsys, ["verify", "--family", "xcode", "--disks", "12"]
        )

    def test_simulate_invalid_geometry(self, capsys):
        self._assert_exit_2(
            capsys, ["simulate", "--family", "xcode", "--disks", "8"]
        )

    def test_recover_failed_disk_out_of_range(self, capsys):
        self._assert_exit_2(
            capsys,
            ["recover", "--family", "evenodd", "--disks", "7",
             "--failed-disk", "-3"],
        )

    def test_degraded_row_out_of_range(self, capsys):
        self._assert_exit_2(
            capsys,
            ["degraded", "--family", "rdp", "--disks", "8", "--rows", "99"],
        )

    def test_trace_invalid_geometry(self, capsys):
        self._assert_exit_2(
            capsys, ["trace", "--family", "xcode", "--disks", "9"]
        )

    def test_unknown_family_rejected_by_parser(self):
        with pytest.raises(SystemExit) as exc:
            main(["scheme", "--family", "nope", "--disks", "8"])
        assert exc.value.code == 2
