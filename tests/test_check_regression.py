"""The bench-regression gate: passes on identical data, fails on drift."""

import copy
import importlib.util
import json
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO / "benchmarks" / "check_regression.py"
    )
    mod = importlib.util.module_from_spec(spec)
    sys.modules.setdefault("check_regression", mod)
    spec.loader.exec_module(mod)
    return mod


checker = _load_checker()


@pytest.fixture
def search_payload():
    return json.loads((REPO / "BENCH_search.json").read_text())


@pytest.fixture
def codes_payload():
    return json.loads((REPO / "BENCH_codes.json").read_text())


def _run(tmp_path, kind, fresh, baseline):
    fresh_p = tmp_path / "fresh.json"
    base_p = tmp_path / "baseline.json"
    fresh_p.write_text(json.dumps(fresh))
    base_p.write_text(json.dumps(baseline))
    return checker.main(
        ["--kind", kind, "--fresh", str(fresh_p), "--baseline", str(base_p)]
    )


class TestSearchGate:
    def test_identical_payload_passes(self, tmp_path, search_payload):
        assert _run(tmp_path, "search", search_payload, search_payload) == 0

    def test_perturbed_metric_fails(self, tmp_path, search_payload, capsys):
        fresh = copy.deepcopy(search_payload)
        point = fresh["current"]["points"][0]
        point["expanded"] += 1
        assert _run(tmp_path, "search", fresh, search_payload) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_disjoint_grids_fail(self, tmp_path, search_payload, capsys):
        """Zero overlap must fail loudly, not pass vacuously."""
        fresh = copy.deepcopy(search_payload)
        for point in fresh["current"]["points"]:
            point["n_disks"] += 100
        assert _run(tmp_path, "search", fresh, search_payload) == 1


class TestCodesGate:
    def test_identical_payload_passes(self, tmp_path, codes_payload):
        assert _run(tmp_path, "codes", codes_payload, codes_payload) == 0

    def test_perturbed_max_load_fails(self, tmp_path, codes_payload, capsys):
        fresh = copy.deepcopy(codes_payload)
        point = fresh["points"][0]
        alg = next(iter(point["per_algorithm"]))
        point["per_algorithm"][alg]["max_load"] += 0.5
        assert _run(tmp_path, "codes", fresh, codes_payload) == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_config_mismatch_fails(self, tmp_path, codes_payload):
        """A fresh run with a different search budget is not comparable."""
        fresh = copy.deepcopy(codes_payload)
        fresh["config"]["max_expansions"] *= 2
        assert _run(tmp_path, "codes", fresh, codes_payload) == 1


class TestRebuildGate:
    def test_identical_payload_passes(self, tmp_path):
        payload = json.loads((REPO / "BENCH_rebuild.json").read_text())
        assert _run(tmp_path, "rebuild", payload, payload) == 0

    def test_broken_invariant_fails(self, tmp_path, capsys):
        payload = json.loads((REPO / "BENCH_rebuild.json").read_text())
        fresh = copy.deepcopy(payload)
        fresh["points"][0]["byte_identical"] = False
        assert _run(tmp_path, "rebuild", fresh, payload) == 1
        assert "REGRESSION" in capsys.readouterr().err
