"""Tests for GF(2) polynomial arithmetic and primality machinery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2.field import PRIMITIVE_POLYS
from repro.gf2.poly import (
    add,
    all_ones,
    degree,
    divmod_poly,
    gcd,
    is_irreducible,
    is_primitive,
    mod,
    mul,
    mulmod,
    powmod,
)


class TestBasics:
    def test_degree(self):
        assert degree(0) == -1
        assert degree(1) == 0
        assert degree(0b1011) == 3

    def test_mul_known(self):
        # (x+1)(x+1) = x^2 + 1 over GF(2)
        assert mul(0b11, 0b11) == 0b101
        # x * (x^2 + x + 1) = x^3 + x^2 + x
        assert mul(0b10, 0b111) == 0b1110

    def test_divmod_identity(self):
        rng = random.Random(3)
        for _ in range(50):
            a = rng.getrandbits(12)
            b = rng.getrandbits(6) | (1 << 6)
            q, r = divmod_poly(a, b)
            assert mul(q, b) ^ r == a
            assert degree(r) < degree(b)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            divmod_poly(1, 0)

    def test_gcd_of_multiples(self):
        g = 0b111  # x^2+x+1 (irreducible)
        assert gcd(mul(g, 0b10), mul(g, 0b11)) == g

    def test_powmod_small(self):
        m = 0b1011  # x^3 + x + 1, primitive
        assert powmod(0b10, 7, m) == 1  # x^7 = 1 in GF(8)
        assert powmod(0b10, 0, m) == 1
        with pytest.raises(ValueError):
            powmod(0b10, -1, m)


class TestIrreducibility:
    def test_known_irreducible(self):
        for poly in (0b11, 0b111, 0b1011, 0b10011, 0b100101):
            assert is_irreducible(poly), bin(poly)

    def test_known_reducible(self):
        # x^2 = x*x ; x^2+1 = (x+1)^2 ; x^4+x^2+1 = (x^2+x+1)^2
        for poly in (0b100, 0b101, 0b10101):
            assert not is_irreducible(poly), bin(poly)

    def test_constants_not_irreducible(self):
        assert not is_irreducible(0)
        assert not is_irreducible(1)

    def test_exhaustive_degree_3(self):
        """Exactly two irreducible cubics over GF(2): x^3+x+1, x^3+x^2+1."""
        irr = [p for p in range(8, 16) if is_irreducible(p)]
        assert sorted(irr) == [0b1011, 0b1101]


class TestPrimitivity:
    def test_field_default_polys_are_primitive(self):
        for w, low_bits in PRIMITIVE_POLYS.items():
            poly = low_bits | (1 << w)
            assert is_primitive(poly), f"w={w}"

    def test_irreducible_but_not_primitive(self):
        # x^4+x^3+x^2+x+1 is irreducible, but x has order 5 != 15
        poly = 0b11111
        assert is_irreducible(poly)
        assert not is_primitive(poly)

    def test_reducible_not_primitive(self):
        assert not is_primitive(0b101)


class TestBlaumRothModulus:
    def test_all_ones(self):
        assert all_ones(5) == 0b11111
        with pytest.raises(ValueError):
            all_ones(1)

    def test_x_has_order_p_mod_Mp(self):
        """In GF(2)[x]/M_p(x), x^p = 1 — the ring fact behind Blaum-Roth."""
        for p in (3, 5, 7, 11):
            m = all_ones(p)
            assert powmod(0b10, p, m) == mod(1, m)

    def test_xd_plus_one_invertible(self):
        """gcd(x^d + 1, M_p) = 1 for 1 <= d < p — the MDS condition."""
        for p in (5, 7):
            m = all_ones(p)
            for d in range(1, p):
                assert gcd(powmod(0b10, d, m) ^ 1, m) == 1


@given(st.integers(0, 2**10 - 1), st.integers(0, 2**10 - 1), st.integers(1, 2**8 - 1))
@settings(max_examples=80, deadline=None)
def test_ring_laws(a, b, m):
    assert mul(a, b) == mul(b, a)
    assert add(a, b) == add(b, a)
    assert mulmod(a, b, m) == mulmod(b, a, m)
    # distributivity
    c = 0b1101
    assert mul(a, add(b, c)) == add(mul(a, b), mul(a, c))
