"""Unit and property tests for repro.gf2.linalg."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import BitMatrix, inverse, nullspace, rank, row_reduce, solve
from repro.gf2.linalg import is_invertible


def random_matrix(rng, nrows, ncols):
    m = BitMatrix(ncols)
    m.rows = [rng.getrandbits(ncols) for _ in range(nrows)]
    return m


class TestRank:
    def test_identity_full_rank(self):
        assert rank(BitMatrix.identity(7)) == 7

    def test_zero_matrix(self):
        assert rank(BitMatrix.zeros(4, 4)) == 0

    def test_duplicate_rows(self):
        m = BitMatrix(3, [0b101, 0b101, 0b010])
        assert rank(m) == 2

    def test_rank_le_min_dim(self):
        rng = random.Random(1)
        for _ in range(20):
            m = random_matrix(rng, 5, 9)
            assert rank(m) <= 5


class TestRowReduce:
    def test_rref_pivots_unique(self):
        m = BitMatrix(4, [0b1010, 0b0110, 0b1100])
        rref, pivots = row_reduce(m)
        assert len(pivots) == rank(m)
        # each pivot column has exactly one 1 in the rref
        for i, c in enumerate(pivots):
            col = sum(((r >> c) & 1) for r in rref.rows)
            assert col == 1

    def test_rref_preserves_rowspace(self):
        rng = random.Random(2)
        m = random_matrix(rng, 6, 8)
        rref, _ = row_reduce(m)
        # every original row must be expressible from rref rows: rank of the
        # stack equals rank of rref
        assert rank(m.vstack(rref)) == rank(rref)


class TestSolve:
    def test_solve_identity(self):
        m = BitMatrix.identity(5)
        assert solve(m, 0b10011) == 0b10011

    def test_solve_inconsistent(self):
        m = BitMatrix(2, [0b01, 0b01])  # x0 = b0, x0 = b1
        assert solve(m, 0b01) is None

    def test_solve_underdetermined(self):
        m = BitMatrix(3, [0b111])
        x = solve(m, 0b1)
        assert x is not None
        assert m.mul_vec(x) == 0b1

    @given(st.integers(0, 2**30 - 1), st.integers(1, 1000))
    @settings(max_examples=60, deadline=None)
    def test_solve_random_consistent(self, seed, seed2):
        rng = random.Random(seed * 1009 + seed2)
        n = rng.randrange(1, 8)
        m = random_matrix(rng, rng.randrange(1, 8), n)
        x_true = rng.getrandbits(n)
        rhs = m.mul_vec(x_true)
        x = solve(m, rhs)
        assert x is not None
        assert m.mul_vec(x) == rhs


class TestInverse:
    def test_inverse_identity(self):
        assert inverse(BitMatrix.identity(4)) == BitMatrix.identity(4)

    def test_singular_returns_none(self):
        m = BitMatrix(2, [0b11, 0b11])
        assert inverse(m) is None

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            inverse(BitMatrix.zeros(2, 3))

    @given(st.integers(0, 2**30 - 1))
    @settings(max_examples=40, deadline=None)
    def test_inverse_roundtrip(self, seed):
        rng = random.Random(seed)
        n = rng.randrange(1, 9)
        m = random_matrix(rng, n, n)
        inv = inverse(m)
        if inv is None:
            assert rank(m) < n
        else:
            assert (m @ inv) == BitMatrix.identity(n)
            assert (inv @ m) == BitMatrix.identity(n)

    def test_is_invertible(self):
        assert is_invertible(BitMatrix.identity(3))
        assert not is_invertible(BitMatrix.zeros(3, 3))
        assert not is_invertible(BitMatrix.zeros(2, 3))


class TestNullspace:
    def test_identity_trivial_nullspace(self):
        assert nullspace(BitMatrix.identity(6)) == []

    def test_zero_matrix_full_nullspace(self):
        ns = nullspace(BitMatrix.zeros(2, 4))
        assert len(ns) == 4

    @given(st.integers(0, 2**30 - 1))
    @settings(max_examples=40, deadline=None)
    def test_nullspace_vectors_annihilate(self, seed):
        rng = random.Random(seed)
        m = random_matrix(rng, rng.randrange(1, 7), rng.randrange(1, 10))
        ns = nullspace(m)
        for v in ns:
            assert m.mul_vec(v) == 0
        # rank-nullity
        assert rank(m) + len(ns) == m.ncols
