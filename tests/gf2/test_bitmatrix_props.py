"""Hypothesis algebra laws for BitMatrix."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import BitMatrix
from repro.gf2.linalg import rank


def rand_matrix(rng, nrows, ncols):
    m = BitMatrix(ncols)
    m.rows = [rng.getrandbits(ncols) for _ in range(nrows)]
    return m


@given(st.integers(0, 2**29))
@settings(max_examples=50, deadline=None)
def test_matmul_associative(seed):
    rng = random.Random(seed)
    a, b, c = rng.randrange(1, 6), rng.randrange(1, 6), rng.randrange(1, 6)
    d = rng.randrange(1, 6)
    A = rand_matrix(rng, a, b)
    B = rand_matrix(rng, b, c)
    C = rand_matrix(rng, c, d)
    assert (A @ B) @ C == A @ (B @ C)


@given(st.integers(0, 2**29))
@settings(max_examples=50, deadline=None)
def test_transpose_of_product(seed):
    rng = random.Random(seed)
    a, b, c = rng.randrange(1, 6), rng.randrange(1, 6), rng.randrange(1, 6)
    A = rand_matrix(rng, a, b)
    B = rand_matrix(rng, b, c)
    assert (A @ B).transpose() == B.transpose() @ A.transpose()


@given(st.integers(0, 2**29))
@settings(max_examples=50, deadline=None)
def test_matmul_distributes_over_add(seed):
    rng = random.Random(seed)
    a, b, c = rng.randrange(1, 6), rng.randrange(1, 6), rng.randrange(1, 6)
    A = rand_matrix(rng, a, b)
    B = rand_matrix(rng, b, c)
    C = rand_matrix(rng, b, c)
    assert A @ (B + C) == (A @ B) + (A @ C)


@given(st.integers(0, 2**29))
@settings(max_examples=50, deadline=None)
def test_mul_vec_agrees_with_matmul(seed):
    rng = random.Random(seed)
    a, b = rng.randrange(1, 7), rng.randrange(1, 7)
    A = rand_matrix(rng, a, b)
    v = rng.getrandbits(b)
    col = BitMatrix(1, [((v >> j) & 1) for j in range(b)])
    assert (A @ col).column(0) == A.mul_vec(v)


@given(st.integers(0, 2**29))
@settings(max_examples=50, deadline=None)
def test_rank_of_product_bounded(seed):
    rng = random.Random(seed)
    a, b, c = rng.randrange(1, 7), rng.randrange(1, 7), rng.randrange(1, 7)
    A = rand_matrix(rng, a, b)
    B = rand_matrix(rng, b, c)
    assert rank(A @ B) <= min(rank(A), rank(B))


@given(st.integers(0, 2**29))
@settings(max_examples=50, deadline=None)
def test_vec_mul_is_row_combination(seed):
    rng = random.Random(seed)
    n, m = rng.randrange(1, 7), rng.randrange(1, 8)
    A = rand_matrix(rng, n, m)
    sel = rng.getrandbits(n)
    expect = 0
    for i in range(n):
        if (sel >> i) & 1:
            expect ^= A.rows[i]
    assert A.vec_mul(sel) == expect
