"""Unit and property tests for GF(2^w) arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf2 import BitMatrix, GF2w


@pytest.fixture(scope="module")
def gf16():
    return GF2w(4)


@pytest.fixture(scope="module")
def gf256():
    return GF2w(8)


class TestTables:
    @pytest.mark.parametrize("w", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_log_exp_inverse_maps(self, w):
        f = GF2w(w)
        for a in range(1, f.size):
            assert f.exp[f.log[a]] == a

    def test_non_primitive_poly_rejected(self):
        # x^4 + 1 is not primitive (not even irreducible)
        with pytest.raises(ValueError):
            GF2w(4, poly=0b0001)

    def test_unknown_w_without_poly(self):
        with pytest.raises(ValueError):
            GF2w(12)


class TestArithmetic:
    def test_mul_by_zero_and_one(self, gf256):
        for a in [0, 1, 2, 77, 255]:
            assert gf256.mul(a, 0) == 0
            assert gf256.mul(0, a) == 0
            assert gf256.mul(a, 1) == a

    def test_known_gf16_products(self, gf16):
        # x * x = x^2 -> 2*2 = 4; x^3 * x = x^4 = x + 1 -> 8*2 = 3
        assert gf16.mul(2, 2) == 4
        assert gf16.mul(8, 2) == 3

    def test_inverse(self, gf256):
        for a in range(1, 256):
            assert gf256.mul(a, gf256.inv(a)) == 1

    def test_inv_zero_raises(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inv(0)

    def test_div(self, gf16):
        for a in range(16):
            for b in range(1, 16):
                assert gf16.mul(gf16.div(a, b), b) == a

    def test_pow(self, gf16):
        assert gf16.pow(2, 0) == 1
        assert gf16.pow(2, 4) == 3  # x^4 = x + 1
        assert gf16.pow(0, 3) == 0
        with pytest.raises(ZeroDivisionError):
            gf16.pow(0, 0)
        assert gf16.mul(gf16.pow(2, -1), 2) == 1

    @given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=100, deadline=None)
    def test_field_laws(self, a, b, c):
        f = GF2w(8)
        assert f.mul(a, b) == f.mul(b, a)
        assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)
        assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)


class TestMulMatrix:
    @pytest.mark.parametrize("w", [2, 3, 4, 8])
    def test_matrix_matches_field_mul(self, w):
        f = GF2w(w)
        for a in range(f.size):
            m = f.mul_matrix(a)
            for v in range(f.size):
                assert m.mul_vec(v) == f.mul(a, v)

    def test_matrix_of_one_is_identity(self, gf16):
        assert gf16.mul_matrix(1) == BitMatrix.identity(4)

    def test_matrix_product_is_field_product(self, gf16):
        a, b = 7, 11
        ma, mb = gf16.mul_matrix(a), gf16.mul_matrix(b)
        assert (ma @ mb) == gf16.mul_matrix(gf16.mul(a, b))
