"""Unit tests for repro.gf2.bitmatrix."""

import pytest

from repro.gf2 import BitMatrix


class TestConstruction:
    def test_identity_shape_and_entries(self):
        m = BitMatrix.identity(4)
        assert m.shape == (4, 4)
        for i in range(4):
            for j in range(4):
                assert m.get(i, j) == (1 if i == j else 0)

    def test_zeros(self):
        m = BitMatrix.zeros(3, 5)
        assert m.shape == (3, 5)
        assert m.is_zero()

    def test_from_dense_roundtrip(self):
        table = [[1, 0, 1], [0, 1, 1]]
        m = BitMatrix.from_dense(table)
        assert m.to_dense() == table

    def test_from_dense_ragged_raises(self):
        with pytest.raises(ValueError):
            BitMatrix.from_dense([[1, 0], [1]])

    def test_row_too_wide_raises(self):
        with pytest.raises(ValueError):
            BitMatrix(2, [0b100])

    def test_negative_ncols_raises(self):
        with pytest.raises(ValueError):
            BitMatrix(-1)

    def test_rows_from_sequences(self):
        m = BitMatrix(3, [[1, 1, 0], 0b100])
        assert m.rows == [0b011, 0b100]


class TestAccessors:
    def test_set_and_get(self):
        m = BitMatrix.zeros(2, 2)
        m.set(0, 1, 1)
        assert m.get(0, 1) == 1
        m.set(0, 1, 0)
        assert m.get(0, 1) == 0

    def test_get_out_of_range(self):
        m = BitMatrix.identity(2)
        with pytest.raises(IndexError):
            m.get(0, 2)

    def test_column(self):
        m = BitMatrix.from_dense([[1, 0], [1, 1]])
        assert m.column(0) == 0b11
        assert m.column(1) == 0b10

    def test_row_weight_and_density(self):
        m = BitMatrix.from_dense([[1, 1, 0], [0, 0, 1]])
        assert m.row_weight(0) == 2
        assert m.row_weight(1) == 1
        assert m.density() == 3


class TestAlgebra:
    def test_transpose_involution(self):
        m = BitMatrix.from_dense([[1, 0, 1], [1, 1, 0]])
        assert m.transpose().transpose() == m

    def test_mul_vec_identity(self):
        m = BitMatrix.identity(5)
        assert m.mul_vec(0b10110) == 0b10110

    def test_vec_mul_selects_xor_of_rows(self):
        m = BitMatrix(3, [0b001, 0b010, 0b100])
        assert m.vec_mul(0b101) == 0b101

    def test_matmul_identity(self):
        m = BitMatrix.from_dense([[1, 1], [0, 1], [1, 0]])
        assert m @ BitMatrix.identity(2) == m
        assert BitMatrix.identity(3) @ m == m

    def test_matmul_shape_mismatch(self):
        with pytest.raises(ValueError):
            BitMatrix.identity(2) @ BitMatrix.identity(3)

    def test_matmul_known_product(self):
        a = BitMatrix.from_dense([[1, 1], [0, 1]])
        b = BitMatrix.from_dense([[1, 0], [1, 1]])
        # over GF(2): [[1+1, 0+1], [1, 1]] = [[0,1],[1,1]]
        assert (a @ b).to_dense() == [[0, 1], [1, 1]]

    def test_add_is_xor(self):
        a = BitMatrix.from_dense([[1, 1], [0, 1]])
        b = BitMatrix.from_dense([[1, 0], [1, 1]])
        assert (a + b).to_dense() == [[0, 1], [1, 0]]
        assert (a + a).is_zero()

    def test_hstack_vstack(self):
        a = BitMatrix.identity(2)
        h = a.hstack(a)
        assert h.shape == (2, 4)
        assert h.to_dense() == [[1, 0, 1, 0], [0, 1, 0, 1]]
        v = a.vstack(a)
        assert v.shape == (4, 2)

    def test_submatrix(self):
        m = BitMatrix.from_dense([[1, 0, 1], [0, 1, 1], [1, 1, 0]])
        s = m.submatrix([0, 2], [2, 0])
        assert s.to_dense() == [[1, 1], [0, 1]]

    def test_mul_vec_parity(self):
        m = BitMatrix(3, [0b111])
        assert m.mul_vec(0b101) == 0  # even overlap
        assert m.mul_vec(0b100) == 1  # odd overlap


class TestMisc:
    def test_copy_is_independent(self):
        m = BitMatrix.identity(2)
        c = m.copy()
        c.set(0, 1, 1)
        assert m.get(0, 1) == 0

    def test_pretty(self):
        m = BitMatrix.from_dense([[1, 0], [0, 1]])
        assert m.pretty() == "1.\n.1"

    def test_eq_hash(self):
        a = BitMatrix.identity(3)
        b = BitMatrix.identity(3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != BitMatrix.zeros(3, 3)
