"""Rack-aware placement + topology attachment + shard_bounds snapping."""

import numpy as np
import pytest

from repro.placement import (
    PlacementMap,
    RackAwarePlacement,
    list_placements,
    make_placement,
)
from repro.topology import Topology


class TestRackAware:
    def setup_method(self):
        self.topo = Topology.parse("6x2x10")  # 120 disks, 20 per rack

    def test_registry_is_opt_in(self):
        assert "rack_aware" not in list_placements()
        assert "rack_aware" in list_placements(include_topology=True)

    def test_requires_topology(self):
        with pytest.raises(ValueError, match="topology"):
            make_placement("rack_aware", 120, 100, 8)
        with pytest.raises(ValueError, match="topology"):
            RackAwarePlacement(120, 100, 8, topology=None)

    def test_pool_size_must_match_tree(self):
        with pytest.raises(ValueError, match="120"):
            RackAwarePlacement(60, 100, 8, topology=self.topo)

    def test_full_width_stripe_fills_every_rack_slot(self):
        # boundary: width == pool size => every rack hosts exactly
        # ceil(w / R) == disks_per_rack roles
        tiny = Topology.parse("2x1x2")  # 4 disks, 2 per rack
        pm = RackAwarePlacement(4, 20, 4, topology=tiny)
        for s in range(20):
            assert set(pm.table[s].tolist()) == {0, 1, 2, 3}

    def test_attaches_topology(self):
        pm = make_placement("rack_aware", 120, 200, 8, topology=self.topo)
        assert pm.topology is self.topo
        assert np.array_equal(pm.leaf_of_disk, np.arange(120))

    def test_stripe_disks_distinct(self):
        pm = RackAwarePlacement(120, 500, 8, topology=self.topo)
        for s in range(0, 500, 37):
            assert len(set(pm.table[s].tolist())) == 8

    def test_per_rack_colocation_cap(self):
        pm = RackAwarePlacement(120, 500, 8, topology=self.topo)
        cap = -(-8 // self.topo.n_racks)  # ceil(w / R)
        rack = self.topo.rack_of_disk[pm.table]
        for s in range(500):
            counts = np.bincount(rack[s], minlength=self.topo.n_racks)
            assert counts.max() <= cap

    def test_rebuild_sources_spread_across_epochs(self):
        """The per-(epoch, rack) offset decorrelates co-host sets: a dead
        disk's rebuild sources must span far more disks than one stripe's
        width (the regression where every affected stripe shared hosts)."""
        pm = RackAwarePlacement(120, 2400, 8, topology=self.topo)
        stripes, _ = pm.roles_of_disk(5)
        hosts = set(pm.table[stripes].ravel().tolist()) - {5}
        assert len(hosts) > 40

    def test_plain_strategy_can_attach_topology(self):
        pm = make_placement("declustered", 120, 100, 8, topology=self.topo)
        assert pm.topology is self.topo

    def test_attach_validates_leaf_map(self):
        pm = make_placement("declustered", 60, 100, 8)
        with pytest.raises(ValueError):
            pm.attach_topology(self.topo)  # 60 != 120 needs explicit map
        leaf = np.arange(60) * 2
        pm.attach_topology(self.topo, leaf_of_disk=leaf)
        assert np.array_equal(pm.leaf_of_disk, leaf)
        with pytest.raises(ValueError):
            make_placement("declustered", 60, 100, 8).attach_topology(
                self.topo, leaf_of_disk=np.zeros(60, dtype=np.int64)
            )  # duplicate leaves

    def test_require_leaf_of_disk(self):
        pm = make_placement("declustered", 120, 100, 8)
        with pytest.raises(ValueError, match="topology"):
            pm.require_leaf_of_disk()
        pm.attach_topology(self.topo)
        other = Topology.parse("4x3x10")
        with pytest.raises(ValueError):
            pm.require_leaf_of_disk(other)


class TestShardBoundsNearest:
    def test_snaps_to_nearer_start_on_skewed_groups(self):
        # regression: boundary target 50 used to snap UP to 100, leaving
        # the second shard empty; 10 is 40 closer
        table = np.zeros((100, 2), dtype=np.int64)
        table[:, 1] = 1
        pm = PlacementMap(
            4, table, "t", group_starts=np.asarray([0, 10, 100])
        )
        bounds = pm.shard_bounds(2)
        assert list(bounds) == [0, 10, 100]

    def test_ties_snap_up(self):
        table = np.zeros((40, 2), dtype=np.int64)
        table[:, 1] = 1
        pm = PlacementMap(
            4, table, "t", group_starts=np.asarray([0, 10, 30, 40])
        )
        # target 20 is equidistant from 10 and 30 -> up wins
        assert list(pm.shard_bounds(2)) == [0, 30, 40]

    def test_still_monotone_and_covering(self):
        table = np.zeros((100, 2), dtype=np.int64)
        table[:, 1] = 1
        pm = PlacementMap(
            4, table, "t", group_starts=np.asarray([0, 3, 4, 98])
        )
        for n_shards in (1, 2, 3, 9):
            b = pm.shard_bounds(n_shards)
            assert b[0] == 0 and b[-1] == 100
            assert np.all(np.diff(b) >= 0)
