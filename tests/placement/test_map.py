"""Placement-map unit tests: strategies, both lookup directions, bounds."""

import numpy as np
import pytest

from repro.placement import (
    D3Placement,
    DeclusteredPlacement,
    FlatPlacement,
    PlacementMap,
    RandomPlacement,
    list_placements,
    make_placement,
    rebuild_read_loads,
)

STRATEGIES = list_placements()


class TestFactory:
    def test_lists_all_strategies(self):
        assert STRATEGIES == ["d3", "declustered", "flat", "random"]

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            make_placement("copyset", 60, 100, 6)

    @pytest.mark.parametrize("name", STRATEGIES)
    def test_factory_builds_each(self, name):
        pm = make_placement(name, 60, 100, 6, seed=3)
        assert pm.name == name
        assert pm.n_pool == 60
        assert pm.n_stripes == 100
        assert pm.width == 6

    @pytest.mark.parametrize(
        "n_pool,n_stripes,width", [(5, 10, 6), (60, 0, 6), (60, 10, 1)]
    )
    def test_bad_geometry_rejected(self, n_pool, n_stripes, width):
        for name in STRATEGIES:
            with pytest.raises(ValueError):
                make_placement(name, n_pool, n_stripes, width)


class TestTableValidation:
    def test_duplicate_disk_in_stripe_rejected(self):
        table = np.asarray([[0, 1, 2], [3, 3, 4]])
        with pytest.raises(ValueError, match="stripe 1"):
            PlacementMap(10, table, "bad")

    def test_out_of_pool_disk_rejected(self):
        with pytest.raises(ValueError):
            PlacementMap(4, np.asarray([[0, 1, 7]]), "bad")
        with pytest.raises(ValueError):
            PlacementMap(4, np.asarray([[-1, 1, 2]]), "bad")

    def test_width_beyond_pool_rejected(self):
        with pytest.raises(ValueError):
            PlacementMap(2, np.asarray([[0, 1, 2]]), "bad")


class TestLookups:
    @pytest.mark.parametrize("name", STRATEGIES)
    def test_roles_cover_each_stripe_once(self, name):
        pm = make_placement(name, 40, 50, 5, seed=1)
        for s in (0, 7, 49):
            disks = {int(pm.disk_of_role(s, r)) for r in range(pm.width)}
            assert disks == set(pm.disks_for_stripe(s).tolist())

    @pytest.mark.parametrize("name", STRATEGIES)
    def test_inverse_round_trips(self, name):
        pm = make_placement(name, 40, 60, 5, seed=2)
        for disk in (0, 13, 39):
            stripes, roles = pm.roles_of_disk(disk)
            back = pm.disk_of_role(stripes, roles)
            assert np.all(back == disk)

    def test_stripes_per_disk_sums_to_placements(self):
        pm = make_placement("declustered", 30, 90, 6)
        counts = pm.stripes_per_disk()
        assert counts.sum() == 90 * 6

    def test_flat_leaves_leftover_disks_idle(self):
        pm = FlatPlacement(n_pool=20, n_stripes=40, width=6)  # 3 groups + 2 spare
        counts = pm.stripes_per_disk()
        assert np.all(counts[18:] == 0)
        assert np.all(counts[:18] > 0)

    def test_rotation_moves_roles_across_group_disks(self):
        # within one flat group, consecutive stripes shift each role by
        # one slot — the paper's rotation, preserved on the pool
        pm = FlatPlacement(n_pool=6, n_stripes=12, width=6)
        hosts = {int(pm.disk_of_role(s, 0)) for s in range(6)}
        assert hosts == set(range(6))


class TestShardBounds:
    def test_flat_bounds_align_to_group_starts(self):
        pm = FlatPlacement(n_pool=24, n_stripes=96, width=6)  # 4 groups
        bounds = pm.shard_bounds(2)
        starts = set(pm.group_starts.tolist()) | {96}
        assert set(bounds.tolist()) <= starts
        assert bounds[0] == 0 and bounds[-1] == 96
        # no shard splits a group: group ids are constant inside a shard
        s = np.arange(96)
        group = s * 4 // 96
        for i in range(2):
            lo, hi = bounds[i], bounds[i + 1]
            if hi > lo:
                d = np.unique(pm.table[lo:hi], axis=0)
                assert len(d) == len(np.unique(group[lo:hi]))

    @pytest.mark.parametrize("name", STRATEGIES)
    def test_bounds_monotone_and_cover(self, name):
        pm = make_placement(name, 30, 45, 5)
        for n_shards in (1, 2, 7, 46):
            b = pm.shard_bounds(n_shards)
            assert b[0] == 0 and b[-1] == 45
            assert np.all(np.diff(b) >= 0)

    def test_bad_shard_count_rejected(self):
        pm = make_placement("flat", 30, 45, 5)
        with pytest.raises(ValueError):
            pm.shard_bounds(0)


class TestRebuildReadLoads:
    def _uniform_loads(self, width):
        # pretend scheme: read one element from every survivor
        return {r: [1] * r + [0] + [1] * (width - r - 1) for r in range(width)}

    def test_dead_disk_never_read(self):
        pm = make_placement("declustered", 50, 200, 5)
        loads = rebuild_read_loads(pm, 7, self._uniform_loads(5))
        assert loads[7] == 0
        affected, _ = pm.stripes_of_disk(7)
        assert loads.sum() == len(affected) * 4

    def test_flat_concentrates_declustered_spreads(self):
        width, pool = 8, 128
        flat = FlatPlacement(pool, 4000, width)
        dec = DeclusteredPlacement(pool, 4000, width)
        loads = self._uniform_loads(width)
        f = rebuild_read_loads(flat, 3, loads)
        d = rebuild_read_loads(dec, 3, loads)
        # total work is (width - 1) reads per affected stripe either way...
        assert f.sum() == len(flat.stripes_of_disk(3)[0]) * (width - 1)
        assert d.sum() == len(dec.stripes_of_disk(3)[0]) * (width - 1)
        assert f.max() >= 2 * d.max()  # ...but flat piles it on 7 disks

    def test_d3_spreads_like_declustered(self):
        width, pool = 8, 128
        flat = FlatPlacement(pool, 4000, width)
        d3 = D3Placement(pool, 4000, width)
        loads = self._uniform_loads(width)
        assert rebuild_read_loads(flat, 3, loads).max() >= 2 * rebuild_read_loads(
            d3, 3, loads
        ).max()

    def test_wrong_load_width_rejected(self):
        pm = RandomPlacement(20, 50, 4, seed=0)
        with pytest.raises(ValueError, match="expected 4 loads"):
            rebuild_read_loads(pm, 0, {r: [1, 0, 1] for r in range(4)})
