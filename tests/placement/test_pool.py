"""Pool store + pool rebuild: byte-exactness, billing, planning parity."""

import numpy as np
import pytest

from repro.codec.encoder import StripeCodec
from repro.codes import CauchyRSCode, EvenOddCode, RdpCode
from repro.pipeline import PoolRebuild, compare_placements, rebuild_pool_disk
from repro.placement import FlatPlacement, PoolStore, make_placement


def build_store(name="declustered", code=None, n_pool=40, n_stripes=300,
                element_size=8, seed=0):
    code = code or RdpCode(5)
    pm = make_placement(name, n_pool, n_stripes, code.layout.n_disks, seed=seed)
    store = PoolStore(code, pm, element_size=element_size)
    store.encode_random(np.random.default_rng(seed))
    return store


class TestPoolStore:
    def test_width_mismatch_rejected(self):
        pm = make_placement("flat", 40, 100, 5)
        with pytest.raises(ValueError, match="placement width"):
            PoolStore(RdpCode(7), pm)  # rdp@7 is 8 disks wide, map is 5

    def test_encode_batch_matches_per_stripe_encoder(self):
        code = EvenOddCode(5)
        store = build_store("flat", code=code, n_stripes=12)
        codec = StripeCodec(code, store.element_size)
        rng = np.random.default_rng(0)
        data = rng.integers(
            0, 256, size=(12, codec.n_data_elements, store.element_size),
            dtype=np.uint8,
        )
        batch = codec.encode_batch(data)
        for s in range(12):
            assert np.array_equal(batch[s], codec.encode(data[s]))

    def test_role_rows_are_the_roles_elements(self):
        store = build_store(n_stripes=20)
        k = store.k_rows
        got = store.role_rows(np.asarray([3, 11]), role=2)
        assert np.array_equal(got[0], store.stripes[3, 2 * k : 3 * k])
        assert np.array_equal(got[1], store.stripes[11, 2 * k : 3 * k])

    def test_role_rows_before_encode_raises(self):
        pm = make_placement("flat", 40, 10, 6)
        store = PoolStore(RdpCode(5), pm)
        with pytest.raises(RuntimeError, match="empty"):
            store.role_rows(np.asarray([0]), 0)


class TestPoolRebuild:
    @pytest.mark.parametrize("name", ["flat", "declustered", "d3", "random"])
    def test_rebuild_is_byte_exact(self, name):
        store = build_store(name, n_pool=30, n_stripes=200)
        res = rebuild_pool_disk(store, dead_disk=4, chunk_stripes=32)
        assert res.ok
        assert res.mismatches == 0
        stripes, _ = store.placement.roles_of_disk(4)
        assert len(res.stripe_ids) == len(stripes)
        # the dead disk is never its own rebuild source
        assert res.reads_per_disk[4] == 0
        assert np.array_equal(res.stripe_ids, np.sort(stripes))

    @pytest.mark.parametrize(
        "code", [RdpCode(5), EvenOddCode(5), CauchyRSCode(4, 2, w=4)]
    )
    def test_rebuild_across_codes(self, code):
        store = build_store("d3", code=code, n_pool=25, n_stripes=120)
        res = rebuild_pool_disk(store, dead_disk=7)
        assert res.ok

    def test_planned_loads_equal_executed_loads(self):
        store = build_store("declustered", n_pool=36, n_stripes=250)
        engine = PoolRebuild(store, chunk_stripes=64)
        planned = engine.read_loads(dead_disk=9)
        res = engine.rebuild(dead_disk=9)
        assert np.array_equal(planned, res.reads_per_disk)

    def test_idle_flat_spare_disk_rebuilds_to_nothing(self):
        # 4*6=24 disks in groups, disks 24..27 spare and hold no stripes
        store = build_store("flat", code=RdpCode(5), n_pool=28, n_stripes=96)
        res = rebuild_pool_disk(store, dead_disk=26)
        assert res.ok
        assert len(res.stripe_ids) == 0
        assert res.reads_per_disk.sum() == 0

    def test_declustered_halves_flat_max_load(self):
        # the ISSUE acceptance bar, at test scale: >= 2x reduction in
        # max-per-disk rebuild reads on a 100+ disk pool
        results = compare_placements(
            lambda name: build_store(name, n_pool=120, n_stripes=2000),
            ["flat", "declustered"],
            dead_disk=5,
        )
        assert all(r.ok for r in results.values())
        flat, dec = results["flat"], results["declustered"]
        assert flat.max_read_load >= 2 * dec.max_read_load
        busy_flat = int((flat.reads_per_disk > 0).sum())
        busy_dec = int((dec.reads_per_disk > 0).sum())
        assert busy_dec > busy_flat

    def test_throttle_sees_every_chunk(self):
        store = build_store("d3", n_pool=30, n_stripes=150)
        seen = []
        engine = PoolRebuild(store, chunk_stripes=16, throttle=seen.append)
        res = engine.rebuild(dead_disk=2)
        assert res.ok
        assert sum(len(c) for c in seen) == len(res.stripe_ids)
        assert len(seen) == res.stats["chunks"]

    def test_bad_chunk_size_rejected(self):
        store = build_store()
        with pytest.raises(ValueError):
            PoolRebuild(store, chunk_stripes=0)

    def test_empty_store_rejected(self):
        pm = make_placement("flat", 40, 10, 6)
        store = PoolStore(RdpCode(5), pm)
        with pytest.raises(RuntimeError, match="empty"):
            PoolRebuild(store).rebuild(0)

    def test_stats_shape(self):
        store = build_store("random", n_pool=30, n_stripes=100)
        res = rebuild_pool_disk(store, dead_disk=1)
        for key in ("placement", "n_pool", "affected_stripes", "chunks",
                    "rebuilt_mb_s", "read_load"):
            assert key in res.stats
        assert res.stats["placement"] == "random"
        assert res.stats["read_load"]["max_per_disk"] == res.max_read_load
