"""Placement invariants under Hypothesis-driven pool geometries.

The ISSUE's property bar: every stripe's disks are distinct, the inverse
map round-trips, and declustered placement's rebuild-read spread beats
flat placement's max-per-disk load on random pools.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.placement import make_placement, rebuild_read_loads

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)

strategy_names = st.sampled_from(["flat", "declustered", "d3", "random"])


@st.composite
def pool_geometry(draw):
    width = draw(st.integers(3, 9))
    n_pool = draw(st.integers(width, 200))
    n_stripes = draw(st.integers(1, 800))
    seed = draw(st.integers(0, 2**16))
    return n_pool, n_stripes, width, seed


@given(name=strategy_names, geom=pool_geometry())
@settings(**SETTINGS)
def test_every_stripe_uses_distinct_disks(name, geom):
    n_pool, n_stripes, width, seed = geom
    pm = make_placement(name, n_pool, n_stripes, width, seed=seed)
    table = pm.table
    assert table.shape == (n_stripes, width)
    assert table.min() >= 0 and table.max() < n_pool
    # PlacementMap validates this on construction; re-check from outside
    srt = np.sort(table, axis=1)
    assert not np.any(srt[:, 1:] == srt[:, :-1])


@given(name=strategy_names, geom=pool_geometry())
@settings(**SETTINGS)
def test_inverse_map_round_trips(name, geom):
    n_pool, n_stripes, width, seed = geom
    pm = make_placement(name, n_pool, n_stripes, width, seed=seed)
    total = 0
    for disk in {0, n_pool // 2, n_pool - 1}:
        stripes, roles = pm.roles_of_disk(disk)
        assert np.all(pm.disk_of_role(stripes, roles) == disk)
        total += len(stripes)
    # forward direction agrees: membership count matches bincount
    counts = pm.stripes_per_disk()
    assert total == sum(int(counts[d]) for d in {0, n_pool // 2, n_pool - 1})


@given(name=strategy_names, geom=pool_geometry(), data=st.data())
@settings(**SETTINGS)
def test_slots_and_roles_are_inverse_permutations(name, geom, data):
    n_pool, n_stripes, width, seed = geom
    pm = make_placement(name, n_pool, n_stripes, width, seed=seed)
    s = data.draw(st.integers(0, n_stripes - 1), label="stripe")
    hosts = [int(pm.disk_of_role(s, r)) for r in range(width)]
    # the per-stripe rotation is a bijection role <-> slot
    assert sorted(hosts) == sorted(pm.disks_for_stripe(s).tolist())


@given(data=st.data())
@settings(**SETTINGS)
def test_declustered_spread_beats_flat_on_random_pools(data):
    width = data.draw(st.integers(4, 8), label="width")
    # enough groups and stripes that flat's concentration is unambiguous
    n_pool = data.draw(st.integers(8 * width, 240), label="n_pool")
    n_stripes = data.draw(st.integers(40 * width, 4000), label="n_stripes")
    dead = data.draw(st.integers(0, (n_pool // width) * width - 1), label="dead")
    flat = make_placement("flat", n_pool, n_stripes, width)
    dec = make_placement("declustered", n_pool, n_stripes, width)
    loads = {r: [1] * r + [0] + [1] * (width - r - 1) for r in range(width)}
    f = rebuild_read_loads(flat, dead, loads)
    d = rebuild_read_loads(dec, dead, loads)
    if f.max() == 0:
        return  # dead disk held no stripes; nothing to spread
    assert d.max() < f.max()
    # and declustering recruits strictly more survivors
    assert (d > 0).sum() >= (f > 0).sum()
