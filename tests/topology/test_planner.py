"""TopologyAwarePlanner: signatures, memoisation, analytic == executed."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.pipeline import PoolRebuild
from repro.placement import PoolStore, make_placement
from repro.topology import (
    Topology,
    TopologyAwarePlanner,
    canonical_signature,
    link_loads,
)


class TestCanonicalSignature:
    def test_relabels_by_first_occurrence(self):
        m_sig, r_sig = canonical_signature(
            np.asarray([5, 5, 9, 5]), np.asarray([2, 7, 2, 2])
        )
        assert m_sig == (0, 0, 1, 0)
        assert r_sig == (0, 1, 0, 0)

    def test_invariant_under_label_permutation(self):
        a = canonical_signature(np.asarray([3, 1, 3]), np.asarray([0, 0, 4]))
        b = canonical_signature(np.asarray([7, 2, 7]), np.asarray([9, 9, 1]))
        assert a == b


def _pool(topo, placement_name, n_stripes=240, seed=3):
    code = make_code("rdp", 8)
    pm = make_placement(
        placement_name, topo.n_disks, n_stripes, code.layout.n_disks,
        seed=seed, topology=topo,
    )
    store = PoolStore(code, pm, element_size=8)
    store.encode_random(np.random.default_rng(seed))
    return code, store


class TestPlanner:
    def setup_method(self):
        self.topo = Topology.parse("4x2x10")

    def test_memoises_per_signature(self):
        code, store = _pool(self.topo, "rack_aware")
        planner = TopologyAwarePlanner(code, self.topo)
        list(planner.stripe_groups(store.placement, dead_disk=2))
        searches_first = planner.searches
        assert searches_first > 0
        # re-grouping hits the cache: no new searches
        list(planner.stripe_groups(store.placement, dead_disk=2))
        assert planner.searches == searches_first
        assert planner.fallbacks == 0

    def test_groups_partition_affected_stripes(self):
        code, store = _pool(self.topo, "rack_aware")
        planner = TopologyAwarePlanner(code, self.topo)
        placement = store.placement
        stripes, _ = placement.roles_of_disk(2)
        grouped = np.concatenate(
            [s for _, s, _ in planner.stripe_groups(placement, 2)]
        )
        assert np.array_equal(np.sort(grouped), np.sort(stripes))

    def test_search_cap_falls_back_to_scalar(self):
        code, store = _pool(self.topo, "rack_aware")
        planner = TopologyAwarePlanner(code, self.topo, search_cap=0)
        groups = list(planner.stripe_groups(store.placement, 2))
        assert planner.searches == 0
        assert planner.fallbacks == len(groups) or planner.fallbacks > 0
        # fallback schemes are still valid recovery plans
        for role, _, scheme in groups:
            assert scheme.loads[role] == 0

    def test_executed_billing_matches_analytic(self):
        code, store = _pool(self.topo, "rack_aware")
        planner = TopologyAwarePlanner(code, self.topo)
        engine = PoolRebuild(store, topo_planner=planner)
        res = engine.rebuild(2)
        assert res.ok
        assert np.array_equal(engine.read_loads(2), res.reads_per_disk)
        analytic = engine.link_read_loads(2)
        assert np.array_equal(analytic.disk_reads, res.link_loads.disk_reads)
        assert np.array_equal(
            analytic.machine_reads, res.link_loads.machine_reads
        )
        assert np.array_equal(analytic.rack_reads, res.link_loads.rack_reads)
        res.link_loads.check_rollup()

    def test_blind_rebuild_on_attached_topology_also_bills_links(self):
        code, store = _pool(self.topo, "declustered")
        engine = PoolRebuild(store)
        res = engine.rebuild(2)
        assert res.ok
        assert res.link_loads is not None
        assert res.link_loads.total == res.reads_per_disk.sum()
        res.link_loads.check_rollup()

    def test_aware_not_worse_on_max_uplink(self):
        code, store = _pool(self.topo, "rack_aware", n_stripes=400)
        planner = TopologyAwarePlanner(code, self.topo)
        aware = PoolRebuild(store, topo_planner=planner).rebuild(2)
        _, blind_store = _pool(self.topo, "declustered", n_stripes=400)
        blind = PoolRebuild(blind_store).rebuild(2)
        assert (
            aware.link_loads.max_per_rack <= blind.link_loads.max_per_rack
        )

    def test_topology_mismatch_rejected(self):
        code, store = _pool(self.topo, "rack_aware")
        other = Topology.parse("2x2x20")
        planner = TopologyAwarePlanner(code, other)
        with pytest.raises(ValueError):
            PoolRebuild(store, topo_planner=planner)

    def test_link_loads_requires_topology(self):
        code = make_code("rdp", 8)
        pm = make_placement("declustered", 40, 100, code.layout.n_disks)
        with pytest.raises(ValueError, match="topology"):
            link_loads(pm, np.zeros(40, dtype=np.int64))
