"""TopologyCost: lexicographic key semantics + U-Algorithm degeneration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codes import make_code
from repro.equations.enumerate import get_recovery_equations
from repro.recovery.planner import RecoveryPlanner
from repro.recovery.search import generate_scheme
from repro.topology import TopologyCost, topology_cost


def _unpack(key: int, bits: int):
    """Invert TopologyCost.extend()'s packed key into its 4 fields."""
    mask = (1 << bits) - 1
    total = key & mask
    mx_disk = (key >> bits) & mask
    mx_nic = (key >> 2 * bits) & mask
    mx_rack = (key >> 3 * bits) & mask
    return mx_rack, mx_nic, mx_disk, total


class TestKeySemantics:
    def setup_method(self):
        self.code = make_code("rdp", 6)
        self.layout = self.code.layout

    def test_label_length_validated(self):
        n = self.layout.n_disks
        with pytest.raises(ValueError):
            TopologyCost(self.layout, [0] * (n - 1), [0] * n)

    def test_key_counts_levels(self):
        lay = self.layout
        k = lay.k_rows
        # disks {0,1} on machine 0 / rack 0, the rest isolated
        machines = [0, 0] + list(range(1, lay.n_disks - 1))
        racks = machines
        cost = TopologyCost(lay, machines, racks)
        # read 2 elements of disk 0, 1 of disk 1, 1 of disk 2
        mask = (0b11 << (0 * k)) | (0b1 << (1 * k)) | (0b1 << (2 * k))
        mx_rack, mx_nic, mx_disk, total = cost.key_of_mask(mask)
        assert total == 4
        assert mx_disk == 2          # disk 0
        assert mx_nic == 3           # machine {0,1}
        assert mx_rack == 3          # rack {0,1}

    def test_all_isolated_collapses_to_max_load(self):
        lay = self.layout
        labels = list(range(lay.n_disks))
        cost = TopologyCost(lay, labels, labels)
        k = lay.k_rows
        mask = (0b111 << (2 * k)) | (0b1 << (4 * k))
        mx_rack, mx_nic, mx_disk, total = cost.key_of_mask(mask)
        assert mx_rack == mx_nic == mx_disk == 3

    @given(st.lists(st.integers(min_value=0, max_value=200), min_size=1,
                    max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_extend_matches_key_of_mask(self, element_ids):
        """Incremental extend() folds to the same key as the full recount."""
        lay = self.layout
        machines = [d % 3 for d in range(lay.n_disks)]
        racks = [d % 2 for d in range(lay.n_disks)]
        cost = topology_cost(lay, machines, racks)
        state, _ = cost.initial()
        mask = 0
        key = None
        for e in element_ids:
            eid = e % lay.n_elements
            bit = 1 << eid
            add = bit & ~mask
            mask |= bit
            state, key = cost.extend(state, add, mask)
        assert _unpack(key, cost._bits) == cost.key_of_mask(mask)


class TestDegeneration:
    @pytest.mark.parametrize("family,n", [("rdp", 6), ("evenodd", 7)])
    def test_isolated_disks_match_u_algorithm(self, family, n):
        """One disk per machine per rack: topo search == scalar U search."""
        code = make_code(family, n)
        lay = code.layout
        labels = np.arange(lay.n_disks)
        base = RecoveryPlanner(code, algorithm="u", depth=1)
        for role in range(lay.n_disks):
            rec_eqs = get_recovery_equations(
                code, lay.disk_mask(role), depth=1, ensure_complete=True
            )
            topo_scheme = generate_scheme(
                rec_eqs,
                TopologyCost(lay, labels, labels),
                algorithm="topo",
            )
            u_scheme = base.scheme_for_disk(role)
            assert max(topo_scheme.loads) == max(u_scheme.loads)

    def test_one_rack_minimises_total(self):
        """Everything behind one uplink: the rack term IS the total, so the
        search must match the total-minimising Khan objective."""
        code = make_code("rdp", 6)
        lay = code.layout
        ones = [0] * lay.n_disks
        khan = RecoveryPlanner(code, algorithm="khan", depth=1)
        for role in range(lay.n_disks):
            rec_eqs = get_recovery_equations(
                code, lay.disk_mask(role), depth=1, ensure_complete=True
            )
            topo_scheme = generate_scheme(
                rec_eqs, TopologyCost(lay, ones, ones), algorithm="topo"
            )
            assert sum(topo_scheme.loads) == sum(
                khan.scheme_for_disk(role).loads
            )
