"""Max-min fair-share flow simulator: hand-computable cases."""

import numpy as np
import pytest

from repro.topology import (
    Topology,
    rebuild_flows,
    rebuild_makespan,
    simulate_flows,
)


class TestSimulateFlows:
    def test_single_flow_single_link(self):
        res = simulate_flows([100.0], [(0,)], [100.0], ["l0"])
        assert res.makespan_s == pytest.approx(1.0)
        assert res.n_flows == 1
        assert res.bottleneck == "l0"

    def test_two_flows_share_fairly(self):
        # 100 MB and 50 MB over one 100 MB/s link: 50/50 split until the
        # small flow drains at t=1, then the big one gets the full link
        # for its remaining 50 MB -> makespan 1.5 s in two events.
        res = simulate_flows(
            [100.0, 50.0], [(0,), (0,)], [100.0], ["l0"]
        )
        assert res.makespan_s == pytest.approx(1.5)
        assert res.n_events == 2
        assert res.link_busy_s["l0"] == pytest.approx(1.5)

    def test_disjoint_links_run_concurrently(self):
        res = simulate_flows(
            [100.0, 30.0], [(0,), (1,)], [100.0, 10.0], ["a", "b"]
        )
        assert res.makespan_s == pytest.approx(3.0)
        assert res.bottleneck == "b"

    def test_two_hop_path_limited_by_slow_link(self):
        res = simulate_flows([60.0], [(0, 1)], [100.0, 20.0], ["fast", "slow"])
        assert res.makespan_s == pytest.approx(3.0)
        assert res.bottleneck == "slow"

    def test_zero_size_flows_dropped(self):
        res = simulate_flows([0.0, 10.0], [(0,), (0,)], [10.0], ["l0"])
        assert res.n_flows == 1
        assert res.makespan_s == pytest.approx(1.0)

    def test_empty_is_idle(self):
        res = simulate_flows([], [], [10.0], ["l0"])
        assert res.makespan_s == 0.0
        assert res.bottleneck == "idle"

    def test_validation(self):
        with pytest.raises(ValueError, match="paths"):
            simulate_flows([1.0], [], [10.0], ["l0"])
        with pytest.raises(ValueError, match="labels"):
            simulate_flows([1.0], [(0,)], [10.0], [])
        with pytest.raises(ValueError, match="> 0"):
            simulate_flows([1.0], [(0,)], [0.0], ["l0"])


class TestRebuildFlows:
    def setup_method(self):
        self.topo = Topology(
            racks=2, machines_per_rack=1, disks_per_machine=2,
            disk_bw=100.0, nic_bw=200.0, rack_bw=50.0,
        )

    def test_flow_split_and_paths(self):
        loads = np.asarray([4, 0, 0, 0])  # only disk 0 (rack 0) reads
        sizes, paths, caps, labels = rebuild_flows(
            self.topo, loads, element_size=2**20
        )
        # one flow per destination rack, equal split
        assert len(sizes) == self.topo.n_racks
        assert sizes == pytest.approx([2.0, 2.0])
        by_len = sorted(len(p) for p in paths)
        assert by_len == [2, 4]  # rack-local: disk+nic; cross-rack: +up+down
        assert "uplink:0" in labels and "downlink:1" in labels

    def test_makespan_lower_bound_is_busiest_link(self):
        loads = np.asarray([8, 8, 0, 0])  # both rack-0 disks busy
        res = rebuild_makespan(self.topo, loads, element_size=2**20)
        # 8 MB cross-rack through the 50 MB/s uplink from each disk
        assert res.makespan_s >= res.link_busy_s["uplink:0"] > 0
        assert res.makespan_s >= max(res.link_busy_s.values()) - 1e-9

    def test_shape_validated(self):
        with pytest.raises(ValueError, match="shape"):
            rebuild_makespan(self.topo, np.zeros(3), element_size=16)
