"""Topology tree: spec parsing, level maps, validation."""

import numpy as np
import pytest

from repro.topology import Topology


class TestShape:
    def test_level_maps(self):
        t = Topology(racks=2, machines_per_rack=2, disks_per_machine=2)
        assert (t.n_racks, t.n_machines, t.n_disks) == (2, 4, 8)
        assert t.disks_per_rack == 4
        assert list(t.machine_of_disk) == [0, 0, 1, 1, 2, 2, 3, 3]
        assert list(t.rack_of_machine) == [0, 0, 1, 1]
        assert list(t.rack_of_disk) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_maps_compose(self):
        t = Topology(racks=3, machines_per_rack=2, disks_per_machine=5)
        assert np.array_equal(
            t.rack_of_disk, t.rack_of_machine[t.machine_of_disk]
        )

    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            Topology(racks=0, machines_per_rack=2, disks_per_machine=2)
        with pytest.raises(ValueError):
            Topology(racks=2, machines_per_rack=-1, disks_per_machine=2)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            Topology(2, 2, 2, disk_bw=0.0)
        with pytest.raises(ValueError):
            Topology(2, 2, 2, rack_bw=-5.0)


class TestParse:
    def test_parse_round_trip(self):
        t = Topology.parse("6x2x10")
        assert (t.racks, t.machines_per_rack, t.disks_per_machine) == (6, 2, 10)
        assert t.spec() == "6x2x10"
        assert t.n_disks == 120

    def test_parse_bandwidth_kwargs(self):
        t = Topology.parse("2x2x2", disk_bw=100.0, nic_bw=500.0, rack_bw=750.0)
        assert (t.disk_bw, t.nic_bw, t.rack_bw) == (100.0, 500.0, 750.0)

    @pytest.mark.parametrize("bad", ["6x2", "6x2x10x3", "ax2x3", "", "6x0x3"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            Topology.parse(bad)

    def test_describe_and_dict(self):
        t = Topology.parse("2x2x2")
        assert "2x2x2" in t.describe()
        d = t.to_dict()
        assert d["racks"] == 2 and d["machines_per_rack"] == 2
        assert Topology(**d).spec() == t.spec()
