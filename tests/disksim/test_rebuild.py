"""Tests for the pipelined rebuild (write-back) model."""

import pytest

from repro.codes import RdpCode
from repro.disksim import DiskParams
from repro.disksim.rebuild import simulate_rebuild
from repro.recovery import RecoveryPlanner


@pytest.fixture(scope="module")
def rdp7_schemes():
    code = RdpCode(7)
    return code, RecoveryPlanner(code, "u", depth=1).all_data_disk_schemes()


class TestRebuild:
    def test_reads_are_critical_on_paper_drives(self, rdp7_schemes):
        """Savvio 10K.3 writes 2.3x faster than it reads, so the paper's
        'recovery time excludes write-back' assumption holds: the rebuild
        is read-limited and the write-back overhead is small."""
        code, schemes = rdp7_schemes
        result = simulate_rebuild(code, schemes)
        assert result.read_is_critical
        assert result.write_back_overhead_percent < 10.0

    def test_slow_spare_flips_criticality(self, rdp7_schemes):
        code, schemes = rdp7_schemes
        slow_spare = DiskParams(seq_write_bw_mb=5.0)
        result = simulate_rebuild(code, schemes, spare=slow_spare)
        assert not result.read_is_critical
        assert result.makespan_s > result.read_limited_s

    def test_makespan_bounds(self, rdp7_schemes):
        """Pipelined makespan is between either stage alone and their sum."""
        code, schemes = rdp7_schemes
        r = simulate_rebuild(code, schemes, stacks=5)
        assert r.makespan_s >= max(r.read_limited_s, r.write_limited_s)
        assert r.makespan_s <= r.read_limited_s + r.write_limited_s + 1.0

    def test_stacks_scale_linearly(self, rdp7_schemes):
        code, schemes = rdp7_schemes
        one = simulate_rebuild(code, schemes, stacks=1)
        ten = simulate_rebuild(code, schemes, stacks=10)
        assert ten.read_limited_s == pytest.approx(10 * one.read_limited_s)

    def test_empty_schemes_rejected(self, rdp7_schemes):
        code, _ = rdp7_schemes
        with pytest.raises(ValueError):
            simulate_rebuild(code, [])

    def test_balanced_schemes_rebuild_faster(self):
        code = RdpCode(7)
        naive = RecoveryPlanner(code, "naive").all_data_disk_schemes()
        u = RecoveryPlanner(code, "u", depth=1).all_data_disk_schemes()
        assert (
            simulate_rebuild(code, u).makespan_s
            < simulate_rebuild(code, naive).makespan_s
        )
