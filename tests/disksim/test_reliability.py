"""Tests for the window-of-vulnerability Monte-Carlo."""

import pytest

from repro.codes import Raid4Code, RdpCode, StarCode
from repro.disksim.reliability import (
    recovery_hours_for_disk,
    simulate_reliability,
)


class TestRecoveryHours:
    def test_conversion(self):
        # 300 GB at 56.1 MB/s is ~1.52 hours
        hours = recovery_hours_for_disk(300.0, 56.1)
        assert hours == pytest.approx(300 * 1024 / 56.1 / 3600, rel=1e-6)

    def test_invalid_speed(self):
        with pytest.raises(ValueError):
            recovery_hours_for_disk(300, 0)


class TestSimulation:
    def test_validation(self):
        code = RdpCode(5)
        with pytest.raises(ValueError):
            simulate_reliability(code, -1.0)
        with pytest.raises(ValueError):
            simulate_reliability(code, 1.0, trials=0)

    def test_zero_recovery_time_never_loses(self):
        """Instant repair means at most one disk is ever down."""
        code = RdpCode(5)
        r = simulate_reliability(code, 0.0, disk_mttf_hours=5000.0,
                                 trials=300, seed=1)
        assert r.data_loss_probability == 0.0
        assert r.mean_degraded_fraction == pytest.approx(0.0, abs=1e-9)

    def test_faster_recovery_reduces_loss(self):
        """The paper's whole argument: shorter windows, fewer losses.  Use
        an exaggerated regime (unreliable disks, long rebuilds) so the
        Monte-Carlo signal is strong with few trials."""
        code = Raid4Code(6, 4)  # tolerates one failure
        kwargs = dict(disk_mttf_hours=50_000.0, mission_hours=50_000.0,
                      trials=800, seed=7)
        slow = simulate_reliability(code, 400.0, **kwargs)
        fast = simulate_reliability(code, 100.0, **kwargs)
        assert 0.0 < fast.data_loss_probability < slow.data_loss_probability < 1.0
        assert fast.mean_degraded_fraction < slow.mean_degraded_fraction

    def test_higher_tolerance_survives_better(self):
        rdp = RdpCode(5)    # 2-fault tolerant, 6 disks
        star = StarCode(5)  # 3-fault tolerant, 8 disks
        kwargs = dict(recovery_hours=300.0, disk_mttf_hours=3000.0,
                      trials=600, seed=3)
        r2 = simulate_reliability(rdp, **kwargs)
        r3 = simulate_reliability(star, **kwargs)
        assert r3.data_loss_probability <= r2.data_loss_probability

    def test_nines(self):
        code = RdpCode(5)
        r = simulate_reliability(code, 0.0, trials=10, seed=1)
        assert r.nines() == float("inf")

    def test_failures_accumulate(self):
        code = RdpCode(5)
        r = simulate_reliability(code, 1.0, disk_mttf_hours=2000.0,
                                 mission_hours=50000.0, trials=50, seed=9)
        assert r.mean_failures_per_mission > 1.0

    def test_lost_missions_still_count_degraded_time(self):
        """Regression: the degraded interval in flight when a mission is
        lost used to be dropped, so a regime where every trial loses data
        reported a degraded fraction of exactly zero."""
        code = RdpCode(5)
        r = simulate_reliability(code, 5000.0, disk_mttf_hours=200.0,
                                 mission_hours=50000.0, trials=40, seed=4)
        assert r.data_loss_probability == 1.0
        assert r.mean_degraded_fraction > 0.0

    def test_zero_recovery_hours_is_explicitly_allowed(self):
        code = RdpCode(5)
        r = simulate_reliability(code, 0.0, trials=5, seed=0)
        assert r.trials == 5

    def test_validation_messages(self):
        code = RdpCode(5)
        with pytest.raises(ValueError, match=">= 0"):
            simulate_reliability(code, -0.5)
        with pytest.raises(ValueError, match="positive"):
            simulate_reliability(code, 1.0, disk_mttf_hours=0.0)
        with pytest.raises(ValueError, match="positive"):
            simulate_reliability(code, 1.0, mission_hours=-10.0)
