"""Tests for the event-driven on-line recovery simulator."""

import pytest

from repro.codes import RdpCode
from repro.disksim import EventDrivenArray, PoissonWorkload, Request, SAVVIO_10K3
from repro.recovery import RecoveryPlanner, naive_scheme, u_scheme


@pytest.fixture(scope="module")
def rdp5():
    return RdpCode(5)


class TestWorkload:
    def test_rate_zero_empty(self):
        wl = PoissonWorkload(0.0, 4, 4, seed=1)
        assert wl.generate(10.0) == []

    def test_requests_within_duration(self):
        wl = PoissonWorkload(5.0, 4, 4, seed=2)
        reqs = wl.generate(20.0)
        assert reqs
        assert all(0 <= r.arrival_s < 20.0 for r in reqs)
        assert all(0 <= r.disk < 4 and 0 <= r.row < 4 for r in reqs)

    def test_rate_controls_volume(self):
        low = len(PoissonWorkload(1.0, 4, 4, seed=3).generate(50.0))
        high = len(PoissonWorkload(10.0, 4, 4, seed=3).generate(50.0))
        assert high > low * 3

    def test_deterministic_with_seed(self):
        a = PoissonWorkload(2.0, 4, 4, seed=4).generate(10.0)
        b = PoissonWorkload(2.0, 4, 4, seed=4).generate(10.0)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonWorkload(-1, 4, 4)
        with pytest.raises(ValueError):
            PoissonWorkload(1, 0, 4)


class TestFaultPlanQueueing:
    def test_slow_disk_delays_recovery_finish(self, rdp5):
        from repro.faults import FaultPlan, SlowDisk

        schemes = [u_scheme(rdp5, 0)]
        # slow down a disk the plan reads from
        disk = next(
            d for d, _ in rdp5.layout.iter_elements(schemes[0].read_mask)
        )
        clean = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, schemes, stripes=6
        )
        degraded = EventDrivenArray(
            rdp5.layout.n_disks,
            fault_plan=FaultPlan([SlowDisk(disk, 5.0)]),
        ).run_online_recovery(rdp5, schemes, stripes=6)
        assert degraded.recovery_finish_s > clean.recovery_finish_s

    def test_persistent_lse_delays_recovery_finish(self, rdp5):
        from repro.faults import FaultPlan, LatentSectorError

        schemes = [u_scheme(rdp5, 0)]
        disk, row = next(rdp5.layout.iter_elements(schemes[0].read_mask))
        clean = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, schemes, stripes=6
        )
        degraded = EventDrivenArray(
            rdp5.layout.n_disks,
            fault_plan=FaultPlan([LatentSectorError(disk, row)]),
        ).run_online_recovery(rdp5, schemes, stripes=6)
        assert degraded.recovery_finish_s > clean.recovery_finish_s


class TestOnlineRecovery:
    def test_idle_array_matches_scheme_shape(self, rdp5):
        """Without user traffic, balanced schemes finish sooner."""
        arr_u = EventDrivenArray(rdp5.layout.n_disks)
        arr_n = EventDrivenArray(rdp5.layout.n_disks)
        u = [u_scheme(rdp5, 0)]
        n = [naive_scheme(rdp5, 0)]
        r_u = arr_u.run_online_recovery(rdp5, u, stripes=8)
        r_n = arr_n.run_online_recovery(rdp5, n, stripes=8)
        assert r_u.recovery_finish_s < r_n.recovery_finish_s
        assert r_u.stripes_recovered == 8

    def test_user_traffic_slows_recovery(self, rdp5):
        schemes = [u_scheme(rdp5, 0)]
        quiet = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, schemes, stripes=6
        )
        wl = PoissonWorkload(30.0, rdp5.layout.n_disks, rdp5.layout.k_rows, seed=5)
        busy = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, schemes, stripes=6, user_requests=wl.generate(60.0)
        )
        assert busy.recovery_finish_s > quiet.recovery_finish_s
        assert busy.user_requests_served > 0
        assert busy.user_mean_latency_s > 0

    def test_latency_percentile_ordering(self, rdp5):
        wl = PoissonWorkload(20.0, rdp5.layout.n_disks, rdp5.layout.k_rows, seed=6)
        res = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, [u_scheme(rdp5, 0)], stripes=4, user_requests=wl.generate(30.0)
        )
        assert res.user_p95_latency_s >= res.user_mean_latency_s * 0.5

    def test_rotating_schemes(self, rdp5):
        """Multiple logical schemes cycle stripe by stripe (stack rotation)."""
        schemes = RecoveryPlanner(rdp5, "u").all_data_disk_schemes()
        res = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, schemes, stripes=len(schemes) * 2
        )
        assert res.stripes_recovered == len(schemes) * 2

    def test_input_validation(self, rdp5):
        arr = EventDrivenArray(rdp5.layout.n_disks)
        with pytest.raises(ValueError):
            arr.run_online_recovery(rdp5, [], stripes=1)
        with pytest.raises(ValueError):
            arr.run_online_recovery(rdp5, [u_scheme(rdp5, 0)], stripes=0)

    def test_heterogeneous_param_validation(self):
        with pytest.raises(ValueError):
            EventDrivenArray(3, [SAVVIO_10K3] * 2)

    def test_user_priority_lowers_latency(self, rdp5):
        """User requests are served before queued recovery reads, so their
        latency stays near the no-recovery service time."""
        lay = rdp5.layout
        service = SAVVIO_10K3.positioning_s + SAVVIO_10K3.element_read_s
        reqs = [Request(arrival_s=5.0, disk=2, row=1)]
        res = EventDrivenArray(lay.n_disks).run_online_recovery(
            rdp5, [u_scheme(rdp5, 0)], stripes=3, user_requests=reqs
        )
        assert res.user_requests_served == 1
        # waits at most one in-flight recovery read plus its own service
        assert res.user_mean_latency_s <= 2.5 * service
