"""Tests for the array model and stack-recovery simulation."""

import pytest

from repro.codes import RdpCode, make_code
from repro.disksim import (
    SAVVIO_10K3,
    DiskArraySimulator,
    simulate_stack_recovery,
)
from repro.disksim.recovery_sim import compare_schemes_speed
from repro.recovery import RecoveryPlanner, naive_scheme, u_scheme


@pytest.fixture(scope="module")
def rdp7():
    return RdpCode(7)


class TestArraySimulator:
    def test_disk_count_validation(self):
        with pytest.raises(ValueError):
            DiskArraySimulator(0)
        with pytest.raises(ValueError):
            DiskArraySimulator(3, [SAVVIO_10K3] * 2)

    def test_rows_by_disk(self, rdp7):
        lay = rdp7.layout
        sim = DiskArraySimulator(lay.n_disks)
        mask = lay.element_mask([(1, 0), (1, 3), (4, 2)])
        by_disk = sim.rows_by_disk(lay, mask)
        assert by_disk == {1: [0, 3], 4: [2]}

    def test_layout_mismatch(self, rdp7):
        sim = DiskArraySimulator(5)
        with pytest.raises(ValueError, match="disks"):
            sim.stripe_recovery_time(rdp7.layout, 1)

    def test_stripe_time_is_max_disk_time(self, rdp7):
        lay = rdp7.layout
        sim = DiskArraySimulator(lay.n_disks)
        scheme = u_scheme(rdp7, 0)
        times = sim.per_disk_read_times(lay, scheme.read_mask)
        assert sim.stripe_recovery_time(lay, scheme.read_mask) == max(times)

    def test_serial_time_is_sum(self, rdp7):
        lay = rdp7.layout
        sim = DiskArraySimulator(lay.n_disks)
        scheme = u_scheme(rdp7, 0)
        assert sim.stripe_recovery_time_serial(
            lay, scheme.read_mask
        ) == pytest.approx(sum(sim.per_disk_read_times(lay, scheme.read_mask)))

    def test_heterogeneous_disks(self, rdp7):
        lay = rdp7.layout
        slow = SAVVIO_10K3.scaled(0.5)
        params = [SAVVIO_10K3] * (lay.n_disks - 1) + [slow]
        sim = DiskArraySimulator(lay.n_disks, params)
        mask = lay.element_mask([(lay.n_disks - 1, 0)])
        fast_mask = lay.element_mask([(0, 0)])
        assert sim.stripe_recovery_time(lay, mask) > sim.stripe_recovery_time(
            lay, fast_mask
        )


class TestFaultPlanTiming:
    def test_slow_disk_inflates_its_read_time(self, rdp7):
        from repro.faults import FaultPlan, SlowDisk

        lay = rdp7.layout
        clean = DiskArraySimulator(lay.n_disks)
        sim = DiskArraySimulator(
            lay.n_disks, fault_plan=FaultPlan([SlowDisk(2, 3.0)])
        )
        mask = lay.element_mask([(2, 0), (3, 0)])
        t_clean = clean.per_disk_read_times(lay, mask)
        t_slow = sim.per_disk_read_times(lay, mask)
        assert t_slow[2] == pytest.approx(3.0 * t_clean[2])
        assert t_slow[3] == pytest.approx(t_clean[3])

    def test_lse_adds_failed_attempt_cost(self, rdp7):
        from repro.faults import FaultPlan, LatentSectorError

        lay = rdp7.layout
        plan = FaultPlan([LatentSectorError(1, 0, stripe=0)])
        clean = DiskArraySimulator(lay.n_disks)
        sim = DiskArraySimulator(lay.n_disks, fault_plan=plan)
        mask = lay.element_mask([(1, 0)])
        # the faulted stripe pays a retry penalty; other stripes do not
        assert sim.stripe_recovery_time(
            lay, mask, stripe=0
        ) > clean.stripe_recovery_time(lay, mask, stripe=0)
        assert sim.stripe_recovery_time(lay, mask, stripe=1) == pytest.approx(
            clean.stripe_recovery_time(lay, mask, stripe=1)
        )


class TestStackRecovery:
    def test_balanced_scheme_recovers_faster(self, rdp7):
        schemes_u = RecoveryPlanner(rdp7, "u").all_data_disk_schemes()
        schemes_naive = RecoveryPlanner(rdp7, "naive").all_data_disk_schemes()
        r_u = simulate_stack_recovery(rdp7, schemes_u)
        r_naive = simulate_stack_recovery(rdp7, schemes_naive)
        assert r_u.speed_mb_s > r_naive.speed_mb_s
        assert r_u.data_recovered_mb == r_naive.data_recovered_mb

    def test_stack_scaling_preserves_speed(self, rdp7):
        schemes = RecoveryPlanner(rdp7, "khan").all_data_disk_schemes()
        r1 = simulate_stack_recovery(rdp7, schemes, stacks=1)
        r20 = simulate_stack_recovery(rdp7, schemes, stacks=20)
        assert r20.speed_mb_s == pytest.approx(r1.speed_mb_s)
        assert r20.recovery_time_s == pytest.approx(20 * r1.recovery_time_s)

    def test_input_validation(self, rdp7):
        with pytest.raises(ValueError):
            simulate_stack_recovery(rdp7, [])
        schemes = [naive_scheme(rdp7, 0)]
        with pytest.raises(ValueError):
            simulate_stack_recovery(rdp7, schemes, stacks=0)

    def test_data_recovered_accounting(self, rdp7):
        schemes = RecoveryPlanner(rdp7, "naive").all_data_disk_schemes()
        r = simulate_stack_recovery(rdp7, schemes, stacks=2)
        lay = rdp7.layout
        expect = 2 * lay.n_data * lay.k_rows * SAVVIO_10K3.element_mb
        assert r.data_recovered_mb == pytest.approx(expect)

    def test_compare_schemes_speed_ordering(self, rdp7):
        by_alg = {
            alg: RecoveryPlanner(rdp7, alg).all_data_disk_schemes()
            for alg in ("naive", "khan", "u")
        }
        speeds = compare_schemes_speed(rdp7, by_alg)
        assert speeds["u"] >= speeds["khan"] >= speeds["naive"]

    def test_paper_speed_magnitude(self):
        """Figure 4 sanity: simulated speeds land in tens of MB/s."""
        code = make_code("evenodd", 10)
        schemes = RecoveryPlanner(code, "khan").all_data_disk_schemes()
        speed = simulate_stack_recovery(code, schemes).speed_mb_s
        assert 20.0 < speed < 200.0
