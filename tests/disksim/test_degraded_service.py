"""Tests for degraded-read service in the event-driven simulator."""

import pytest

from repro.codes import RdpCode
from repro.disksim import EventDrivenArray, Request
from repro.recovery import build_degraded_plans, u_scheme


@pytest.fixture(scope="module")
def rdp5():
    return RdpCode(5)


@pytest.fixture(scope="module")
def plans(rdp5):
    return build_degraded_plans(rdp5, failed_disk=0)


class TestBuildPlans:
    def test_one_plan_per_row(self, rdp5, plans):
        assert set(plans) == set(range(rdp5.layout.k_rows))
        for row, plan in plans.items():
            # sliced plans may carry dependency elements of the same disk;
            # the requested row is always the final recovery step
            eid = rdp5.layout.eid(0, row)
            assert plan.failed_eids[-1] == eid
            assert plan.failed_mask & rdp5.layout.disk_mask(0) == plan.failed_mask
            plan.validate(rdp5)

    def test_plans_avoid_failed_disk(self, rdp5, plans):
        for plan in plans.values():
            assert plan.read_mask & rdp5.layout.disk_mask(0) == 0

    def test_one_search_per_disk(self, rdp5):
        """Building the whole per-row table must cost exactly one scheme
        search (the historical behaviour searched once per row)."""
        from repro import obs

        rec = obs.enable(label="build_degraded_plans search count")
        try:
            table = build_degraded_plans(rdp5, failed_disk=0)
        finally:
            obs.disable()
        counters = {c.name: c.value for c in rec.counters.values()}
        assert counters.get("planner.schemes_generated", 0) == 1
        assert len(table) == rdp5.layout.k_rows


class TestDegradedService:
    def test_request_to_failed_disk_served_via_plan(self, rdp5, plans):
        arr = EventDrivenArray(rdp5.layout.n_disks)
        reqs = [Request(arrival_s=1.0, disk=0, row=2)]
        res = arr.run_online_recovery(
            rdp5,
            [u_scheme(rdp5, 0, depth=1)],
            stripes=2,
            user_requests=reqs,
            failed_disk=0,
            degraded_plans=plans,
        )
        assert res.user_requests_served == 1
        # a degraded read must cost more than a single element service time
        single = arr.disks[1].params.positioning_s + arr.disks[1].params.element_read_s
        assert res.user_mean_latency_s >= single * 0.9

    def test_degraded_read_no_faster_than_direct(self, rdp5, plans):
        """On an idle array a degraded read's parts run in parallel, so its
        latency is the *max* over part disks — never below a direct read of
        the same size (and equal when every part lands on an idle disk:
        that equality is exactly the parallel-I/O property the paper builds
        on)."""
        quiet_arrival = 1000.0  # after recovery completes: array idle
        direct = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5,
            [u_scheme(rdp5, 0, depth=1)],
            stripes=2,
            user_requests=[Request(arrival_s=quiet_arrival, disk=2, row=2)],
        )
        degraded = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5,
            [u_scheme(rdp5, 0, depth=1)],
            stripes=2,
            user_requests=[Request(arrival_s=quiet_arrival, disk=0, row=2)],
            failed_disk=0,
            degraded_plans=plans,
        )
        assert degraded.user_mean_latency_s >= direct.user_mean_latency_s - 1e-9

    def test_plans_required_with_failed_disk(self, rdp5, plans):
        arr = EventDrivenArray(rdp5.layout.n_disks)
        with pytest.raises(ValueError, match="failed_disk"):
            arr.run_online_recovery(
                rdp5,
                [u_scheme(rdp5, 0, depth=1)],
                stripes=1,
                degraded_plans=plans,
            )

    def test_missing_row_plan_raises(self, rdp5, plans):
        arr = EventDrivenArray(rdp5.layout.n_disks)
        partial = {0: plans[0]}
        with pytest.raises(KeyError, match="degraded plan"):
            arr.run_online_recovery(
                rdp5,
                [u_scheme(rdp5, 0, depth=1)],
                stripes=1,
                user_requests=[Request(arrival_s=0.5, disk=0, row=3)],
                failed_disk=0,
                degraded_plans=partial,
            )

    def test_mixed_traffic(self, rdp5, plans):
        arr = EventDrivenArray(rdp5.layout.n_disks)
        reqs = [
            Request(arrival_s=0.2, disk=0, row=1),
            Request(arrival_s=0.3, disk=3, row=0),
            Request(arrival_s=0.4, disk=0, row=3),
        ]
        res = arr.run_online_recovery(
            rdp5,
            [u_scheme(rdp5, 0, depth=1)],
            stripes=3,
            user_requests=reqs,
            failed_disk=0,
            degraded_plans=plans,
        )
        assert res.user_requests_served == 3
        assert res.stripes_recovered == 3
