"""Tests for placement strategies."""

import pytest

from repro.codes import make_code
from repro.disksim.placement import (
    FlatPlacement,
    RotatedPlacement,
    recovery_under_placement,
)
from repro.recovery import RecoveryPlanner


@pytest.fixture(scope="module")
def code():
    # shortened RDP: logical failure situations genuinely differ in cost
    return make_code("rdp", 7)


class TestPlacements:
    def test_mapping_roundtrip(self):
        rot = RotatedPlacement()
        for s in range(6):
            for phys in range(6):
                logical = rot.logical_failed(phys, s, 6)
                assert (logical + s) % 6 == phys

    def test_flat_is_identity(self):
        flat = FlatPlacement()
        assert flat.logical_failed(3, 5, 8) == 3


class TestRecoveryUnderPlacement:
    def test_rotation_equalizes(self, code):
        """With rotation, every physical disk recovers in the same time."""
        result = recovery_under_placement(code, RotatedPlacement())
        assert result.spread == pytest.approx(1.0)

    def test_flat_exposes_situation_differences(self, code):
        """Without rotation, per-disk recovery times differ whenever the
        logical situations do."""
        result = recovery_under_placement(code, FlatPlacement())
        assert result.spread > 1.0

    def test_rotated_mean_equals_flat_mean(self, code):
        """Rotation redistributes, it does not create or destroy work."""
        flat = recovery_under_placement(code, FlatPlacement())
        rot = recovery_under_placement(code, RotatedPlacement())
        mean_flat = sum(flat.per_disk_time_s) / len(flat.per_disk_time_s)
        mean_rot = sum(rot.per_disk_time_s) / len(rot.per_disk_time_s)
        assert mean_rot == pytest.approx(mean_flat)

    def test_custom_stripes_and_planner(self, code):
        planner = RecoveryPlanner(code, "khan", depth=1)
        result = recovery_under_placement(
            code, RotatedPlacement(), planner=planner, stripes=3
        )
        assert len(result.per_disk_time_s) == code.layout.n_disks
        assert result.worst_s > 0
