"""Tests for the single-disk timing model."""

import pytest

from repro.disksim import SAVVIO_10K3, DiskParams


class TestParams:
    def test_defaults_match_paper(self):
        assert SAVVIO_10K3.seq_read_bw_mb == 56.1
        assert SAVVIO_10K3.seq_write_bw_mb == 131.0
        assert SAVVIO_10K3.element_mb == 16.0

    @pytest.mark.parametrize("field,value", [
        ("seq_read_bw_mb", 0), ("seq_write_bw_mb", -1),
        ("seek_ms", -0.1), ("element_mb", 0),
    ])
    def test_invalid_params(self, field, value):
        kwargs = {field: value}
        with pytest.raises(ValueError):
            DiskParams(**kwargs)

    def test_derived_times(self):
        p = DiskParams(seq_read_bw_mb=32.0, seek_ms=2.0,
                       rotational_latency_ms=3.0, element_mb=16.0)
        assert p.positioning_s == pytest.approx(0.005)
        assert p.element_read_s == pytest.approx(0.5)

    def test_scaled(self):
        fast = SAVVIO_10K3.scaled(2.0)
        assert fast.seq_read_bw_mb == pytest.approx(112.2)
        assert fast.seek_ms == SAVVIO_10K3.seek_ms  # positioning unchanged
        with pytest.raises(ValueError):
            SAVVIO_10K3.scaled(0)


class TestRuns:
    def test_adjacent_rows_merge(self):
        p = SAVVIO_10K3
        assert p.runs([0, 1, 2]) == [(0, 3)]

    def test_gaps_split_runs(self):
        p = SAVVIO_10K3
        assert p.runs([0, 2, 3, 7]) == [(0, 1), (2, 2), (7, 1)]

    def test_unsorted_input_handled(self):
        p = SAVVIO_10K3
        assert p.runs([3, 1, 2]) == [(1, 3)]

    def test_duplicates_collapsed(self):
        p = SAVVIO_10K3
        assert p.runs([1, 1, 2]) == [(1, 2)]


class TestReadTime:
    def test_empty_is_free(self):
        assert SAVVIO_10K3.read_time_for_rows([]) == 0.0

    def test_single_element(self):
        p = SAVVIO_10K3
        expect = p.positioning_s + p.element_read_s
        assert p.read_time_for_rows([4]) == pytest.approx(expect)

    def test_sequential_cheaper_than_scattered(self):
        """The Sec. VI-B effect: same volume, more seeks, more time."""
        p = SAVVIO_10K3
        seq = p.read_time_for_rows([0, 1, 2, 3])
        scattered = p.read_time_for_rows([0, 2, 4, 6])
        assert seq < scattered

    def test_scattered_time_formula(self):
        p = SAVVIO_10K3
        t = p.read_time_for_rows([0, 2])
        assert t == pytest.approx(2 * (p.positioning_s + p.element_read_s))

    def test_sequential_read_time(self):
        p = SAVVIO_10K3
        assert p.sequential_read_time(0) == 0.0
        assert p.sequential_read_time(3) == pytest.approx(
            p.positioning_s + 3 * p.element_read_s
        )
