"""Fine-grained behaviour of the event-driven disk model."""

import pytest

from repro.codes import RdpCode
from repro.disksim import EventDrivenArray, Request, SAVVIO_10K3
from repro.disksim.events import _DiskState
from repro.recovery import u_scheme


class TestDiskState:
    def test_adjacent_request_skips_positioning(self):
        d = _DiskState(SAVVIO_10K3)
        d.last_row = 3
        adjacent = d.service_time(4, 1)
        scattered = d.service_time(6, 1)
        assert adjacent == pytest.approx(SAVVIO_10K3.element_read_s)
        assert scattered == pytest.approx(
            SAVVIO_10K3.positioning_s + SAVVIO_10K3.element_read_s
        )

    def test_first_request_pays_positioning(self):
        d = _DiskState(SAVVIO_10K3)
        assert d.service_time(0, 1) == pytest.approx(
            SAVVIO_10K3.positioning_s + SAVVIO_10K3.element_read_s
        )

    def test_multi_element_transfer(self):
        d = _DiskState(SAVVIO_10K3)
        t = d.service_time(0, 3)
        assert t == pytest.approx(
            SAVVIO_10K3.positioning_s + 3 * SAVVIO_10K3.element_read_s
        )


class TestEventLoop:
    @pytest.fixture
    def rdp5(self):
        return RdpCode(5)

    def test_simultaneous_arrivals_all_served(self, rdp5):
        reqs = [Request(arrival_s=1.0, disk=2, row=r) for r in range(4)]
        res = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, [u_scheme(rdp5, 0, depth=1)], stripes=1, user_requests=reqs
        )
        assert res.user_requests_served == 4

    def test_queued_requests_serialize_on_one_disk(self, rdp5):
        """Two same-disk arrivals: the second waits for the first."""
        quiet = 1000.0
        reqs = [
            Request(arrival_s=quiet, disk=2, row=0),
            Request(arrival_s=quiet, disk=2, row=2),
        ]
        res = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, [u_scheme(rdp5, 0, depth=1)], stripes=1, user_requests=reqs
        )
        service = SAVVIO_10K3.positioning_s + SAVVIO_10K3.element_read_s
        # mean of (1 service) and (~2 services) is clearly above 1 service
        assert res.user_mean_latency_s > service * 1.2

    def test_recovery_completes_without_users(self, rdp5):
        res = EventDrivenArray(rdp5.layout.n_disks).run_online_recovery(
            rdp5, [u_scheme(rdp5, 0, depth=1)], stripes=5
        )
        assert res.stripes_recovered == 5
        assert res.user_requests_served == 0
        assert res.recovery_finish_s > 0

    def test_stripe_barrier_serializes_recovery(self, rdp5):
        """Recovering 2N stripes takes ~2x N stripes' time (per-stripe
        barrier, no pipelining across stripes)."""
        arr1 = EventDrivenArray(rdp5.layout.n_disks)
        arr2 = EventDrivenArray(rdp5.layout.n_disks)
        scheme = [u_scheme(rdp5, 0, depth=1)]
        t1 = arr1.run_online_recovery(rdp5, scheme, stripes=4).recovery_finish_s
        t2 = arr2.run_online_recovery(rdp5, scheme, stripes=8).recovery_finish_s
        assert t2 == pytest.approx(2 * t1, rel=0.25)

    def test_heterogeneous_array_slower_disk_dominates(self, rdp5):
        lay = rdp5.layout
        slow = [SAVVIO_10K3] * lay.n_disks
        slow[1] = SAVVIO_10K3.scaled(0.25)
        fast = EventDrivenArray(lay.n_disks).run_online_recovery(
            rdp5, [u_scheme(rdp5, 0, depth=1)], stripes=3
        )
        slowed = EventDrivenArray(lay.n_disks, slow).run_online_recovery(
            rdp5, [u_scheme(rdp5, 0, depth=1)], stripes=3
        )
        assert slowed.recovery_finish_s > fast.recovery_finish_s
