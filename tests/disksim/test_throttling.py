"""Tests for recovery throttling (the Holland on-line recovery tradeoff)."""

import pytest

from repro.codes import RdpCode
from repro.disksim import EventDrivenArray, PoissonWorkload
from repro.recovery import u_scheme


@pytest.fixture(scope="module")
def rdp5():
    return RdpCode(5)


@pytest.fixture(scope="module")
def requests(rdp5):
    wl = PoissonWorkload(25.0, rdp5.layout.n_disks, rdp5.layout.k_rows, seed=41)
    return wl.generate(120.0)


def run(rdp5, requests, delay):
    arr = EventDrivenArray(rdp5.layout.n_disks)
    return arr.run_online_recovery(
        rdp5,
        [u_scheme(rdp5, 0, depth=1)],
        stripes=15,
        user_requests=list(requests),
        inter_stripe_delay_s=delay,
    )


class TestThrottling:
    def test_validation(self, rdp5):
        arr = EventDrivenArray(rdp5.layout.n_disks)
        with pytest.raises(ValueError):
            arr.run_online_recovery(
                rdp5, [u_scheme(rdp5, 0, depth=1)], stripes=1,
                inter_stripe_delay_s=-1.0,
            )

    def test_delay_extends_recovery(self, rdp5, requests):
        fast = run(rdp5, requests, 0.0)
        slow = run(rdp5, requests, 0.5)
        assert slow.recovery_finish_s > fast.recovery_finish_s
        assert slow.stripes_recovered == fast.stripes_recovered == 15

    def test_priority_scheduling_makes_throttling_pointless(self, rdp5, requests):
        """A finding of the model, not a bug: with strict user-priority
        queues the foreground barely feels the recovery (only an in-flight
        recovery read can block), so throttling buys nothing — latency
        stays flat while the window of vulnerability stretches.  Recovery
        rate control matters in systems *without* request prioritisation."""
        fast = run(rdp5, requests, 0.0)
        slow = run(rdp5, requests, 1.0)
        assert slow.user_mean_latency_s == pytest.approx(
            fast.user_mean_latency_s, rel=0.05
        )
        assert slow.recovery_finish_s > fast.recovery_finish_s

    def test_delay_roughly_additive_when_idle(self, rdp5):
        arr0 = EventDrivenArray(rdp5.layout.n_disks)
        arr1 = EventDrivenArray(rdp5.layout.n_disks)
        scheme = [u_scheme(rdp5, 0, depth=1)]
        base = arr0.run_online_recovery(rdp5, scheme, stripes=6)
        delayed = arr1.run_online_recovery(
            rdp5, scheme, stripes=6, inter_stripe_delay_s=0.25
        )
        expect = base.recovery_finish_s + 5 * 0.25  # 5 gaps between 6 stripes
        assert delayed.recovery_finish_s == pytest.approx(expect, rel=0.05)
