"""Tests for the hotspot and sequential-scan workloads."""

import pytest

from repro.disksim import HotspotWorkload, SequentialScanWorkload


class TestHotspot:
    def test_skew_respected(self):
        wl = HotspotWorkload(20.0, 8, 4, hot_disks=[2, 3], hot_fraction=0.9,
                             seed=1)
        reqs = wl.generate(200.0)
        hot = sum(1 for r in reqs if r.disk in (2, 3))
        assert hot / len(reqs) > 0.8

    def test_zero_fraction_is_uniformish(self):
        wl = HotspotWorkload(20.0, 8, 4, hot_disks=[0], hot_fraction=0.0,
                             seed=2)
        reqs = wl.generate(200.0)
        on_zero = sum(1 for r in reqs if r.disk == 0)
        assert on_zero / len(reqs) < 0.3

    def test_validation(self):
        with pytest.raises(ValueError):
            HotspotWorkload(1.0, 4, 4, hot_fraction=1.5)
        with pytest.raises(ValueError):
            HotspotWorkload(1.0, 4, 4, hot_disks=[])
        with pytest.raises(ValueError):
            HotspotWorkload(1.0, 4, 4, hot_disks=[9])


class TestSequentialScan:
    def test_strictly_periodic(self):
        wl = SequentialScanWorkload(disk=1, k_rows=4, interval_s=0.5)
        reqs = wl.generate(5.0)
        assert len(reqs) == 10
        assert reqs[0].arrival_s == 0.0
        assert all(r.disk == 1 for r in reqs)
        gaps = [b.arrival_s - a.arrival_s for a, b in zip(reqs, reqs[1:])]
        assert all(g == pytest.approx(0.5) for g in gaps)

    def test_rows_cycle(self):
        wl = SequentialScanWorkload(disk=0, k_rows=3, interval_s=1.0)
        reqs = wl.generate(7.0)
        assert [r.row for r in reqs] == [0, 1, 2, 0, 1, 2, 0]

    def test_short_duration_still_emits_first_request(self):
        # Regression: the scan used to start at t = interval_s, so a
        # duration at or below one interval produced no requests at all.
        wl = SequentialScanWorkload(disk=0, k_rows=4, interval_s=1.0)
        reqs = wl.generate(1.0)
        assert len(reqs) == 1
        assert reqs[0].arrival_s == 0.0
        assert reqs[0].row == 0
        assert wl.generate(0.5)[0].arrival_s == 0.0

    def test_zero_duration_yields_nothing(self):
        wl = SequentialScanWorkload(disk=0, k_rows=4, interval_s=1.0)
        assert wl.generate(0.0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SequentialScanWorkload(0, 4, 0.0)
        with pytest.raises(ValueError):
            SequentialScanWorkload(0, 0, 1.0)
