"""Package-surface smoke tests: imports, __all__, and module docs."""

import importlib
import pkgutil

import pytest

import repro

SUBPACKAGES = ["gf2", "codes", "equations", "recovery", "codec", "faults",
               "disksim", "analysis", "obs", "pipeline"]


def _walk_modules():
    out = []
    for pkg_name in SUBPACKAGES:
        pkg = importlib.import_module(f"repro.{pkg_name}")
        out.append(pkg.__name__)
        for info in pkgutil.iter_modules(pkg.__path__):
            out.append(f"{pkg.__name__}.{info.name}")
    out.append("repro.cli")
    return out


class TestSurface:
    @pytest.mark.parametrize("module_name", _walk_modules())
    def test_module_imports_and_documented(self, module_name):
        mod = importlib.import_module(module_name)
        assert mod.__doc__, f"{module_name} lacks a module docstring"

    def test_root_all_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize("pkg_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, pkg_name):
        pkg = importlib.import_module(f"repro.{pkg_name}")
        for name in getattr(pkg, "__all__", []):
            assert hasattr(pkg, name), f"repro.{pkg_name}.{name}"

    def test_public_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) or callable(obj):
                assert getattr(obj, "__doc__", None), f"{name} undocumented"

    def test_version_matches_setup(self):
        from pathlib import Path

        setup_text = Path(__file__).resolve().parents[1].joinpath(
            "setup.py"
        ).read_text()
        assert f'version="{repro.__version__}"' in setup_text
