"""Recorder thread-safety and cross-recorder snapshot merging."""

import threading

from repro.obs import Recorder


class TestMergeSnapshot:
    def test_counters_add_and_gauges_peak(self):
        parent = Recorder("parent")
        parent.count("serving.reads", 10)
        parent.gauge("queue_depth", 4)  # peak 4

        shard = Recorder("shard0")
        shard.count("serving.reads", 7)
        shard.count("serving.degraded", 3)
        shard.gauge("queue_depth", 9)
        shard.gauge("queue_depth", 2)  # last value 2, peak 9

        parent.merge_snapshot(shard.snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["serving.reads"] == 17
        assert snap["counters"]["serving.degraded"] == 3
        assert snap["gauges"]["queue_depth"]["value"] == 2
        assert snap["gauges"]["queue_depth"]["peak"] == 9

    def test_merge_does_not_import_spans(self):
        parent = Recorder()
        shard = Recorder()
        with shard.span("work"):
            pass
        parent.merge_snapshot(shard.snapshot())
        assert parent.spans == []

    def test_merge_many_shards_associative(self):
        """Merging N shard snapshots in any order gives the same totals."""
        shards = []
        for i in range(4):
            r = Recorder(f"shard{i}")
            r.count("x", i + 1)
            r.gauge("g", 10 * (i + 1))
            shards.append(r.snapshot())

        forward, backward = Recorder(), Recorder()
        for s in shards:
            forward.merge_snapshot(s)
        for s in reversed(shards):
            backward.merge_snapshot(s)
        assert forward.snapshot()["counters"]["x"] == 10
        assert backward.snapshot()["counters"]["x"] == 10
        assert forward.snapshot()["gauges"]["g"]["peak"] == 40
        assert backward.snapshot()["gauges"]["g"]["peak"] == 40


class TestThreadSafety:
    def test_concurrent_counts_lose_no_updates(self):
        rec = Recorder()
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                rec.count("hits")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counters["hits"].value == n_threads * per_thread

    def test_concurrent_gauge_tracks_global_peak(self):
        rec = Recorder()

        def worker(base):
            for v in range(200):
                rec.gauge("depth", base + v)

        threads = [threading.Thread(target=worker, args=(b,)) for b in (0, 500)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.gauges["depth"].peak == 699
