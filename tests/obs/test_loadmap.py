"""DiskLoadMap accounting: adds, summary shape, recorder publishing."""

import numpy as np
import pytest

from repro.obs import DiskLoadMap, Recorder


class TestAccumulation:
    def test_starts_empty(self):
        m = DiskLoadMap(8)
        assert m.total == 0
        assert m.max_per_disk == 0
        assert m.busy_disks == 0
        assert m.mean_busy == 0.0
        assert m.spread == 1.0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            DiskLoadMap(0)

    def test_add_and_add_many_agree(self):
        a, b = DiskLoadMap(6), DiskLoadMap(6)
        disks = np.asarray([0, 2, 2, 5, 0, 0])
        for d in disks:
            a.add(int(d), 3)
        b.add_many(disks, 3)
        assert np.array_equal(a.reads, b.reads)
        assert a.total == len(disks) * 3

    def test_add_vector_folds_in(self):
        m = DiskLoadMap(4)
        m.add_vector(np.asarray([1, 0, 2, 0]))
        m.add_vector(np.asarray([0, 5, 0, 0]))
        assert list(m.reads) == [1, 5, 2, 0]
        with pytest.raises(ValueError, match="shape"):
            m.add_vector(np.zeros(5, dtype=np.int64))

    def test_shape_metrics(self):
        m = DiskLoadMap(10)
        m.add_vector(np.asarray([6, 2, 2, 2, 0, 0, 0, 0, 0, 0]))
        assert m.busy_disks == 4
        assert m.max_per_disk == 6
        assert m.mean_busy == 3.0
        assert m.spread == 2.0
        s = m.summary()
        assert s["n_disks"] == 10
        assert s["total_reads"] == 12
        assert s["spread"] == 2.0


class TestPublish:
    def test_publish_records_gauges_and_counter(self):
        m = DiskLoadMap(5)
        m.add_many(np.asarray([0, 1, 1]))
        rec = Recorder("t")
        m.publish("pool.rebuild", rec=rec)
        snap = rec.snapshot()
        assert snap["counters"]["pool.rebuild.reads"] == 3
        assert snap["gauges"]["pool.rebuild.max_per_disk"]["value"] == 2
        assert snap["gauges"]["pool.rebuild.busy_disks"]["value"] == 2

    def test_publish_is_noop_when_tracing_off(self):
        m = DiskLoadMap(3)
        m.add(0)
        m.publish("pool.rebuild")  # no process recorder enabled: must not raise
