"""DiskLoadMap accounting: adds, summary shape, recorder publishing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import DiskLoadMap, Recorder


class TestAccumulation:
    def test_starts_empty(self):
        m = DiskLoadMap(8)
        assert m.total == 0
        assert m.max_per_disk == 0
        assert m.busy_disks == 0
        assert m.mean_busy == 0.0
        assert m.spread == 1.0

    def test_bad_size_rejected(self):
        with pytest.raises(ValueError):
            DiskLoadMap(0)

    def test_add_and_add_many_agree(self):
        a, b = DiskLoadMap(6), DiskLoadMap(6)
        disks = np.asarray([0, 2, 2, 5, 0, 0])
        for d in disks:
            a.add(int(d), 3)
        b.add_many(disks, 3)
        assert np.array_equal(a.reads, b.reads)
        assert a.total == len(disks) * 3

    def test_add_vector_folds_in(self):
        m = DiskLoadMap(4)
        m.add_vector(np.asarray([1, 0, 2, 0]))
        m.add_vector(np.asarray([0, 5, 0, 0]))
        assert list(m.reads) == [1, 5, 2, 0]
        with pytest.raises(ValueError, match="shape"):
            m.add_vector(np.zeros(5, dtype=np.int64))

    def test_shape_metrics(self):
        m = DiskLoadMap(10)
        m.add_vector(np.asarray([6, 2, 2, 2, 0, 0, 0, 0, 0, 0]))
        assert m.busy_disks == 4
        assert m.max_per_disk == 6
        assert m.mean_busy == 3.0
        assert m.spread == 2.0
        s = m.summary()
        assert s["n_disks"] == 10
        assert s["total_reads"] == 12
        assert s["spread"] == 2.0


class TestPublish:
    def test_publish_records_gauges_and_counter(self):
        m = DiskLoadMap(5)
        m.add_many(np.asarray([0, 1, 1]))
        rec = Recorder("t")
        m.publish("pool.rebuild", rec=rec)
        snap = rec.snapshot()
        assert snap["counters"]["pool.rebuild.reads"] == 3
        assert snap["gauges"]["pool.rebuild.max_per_disk"]["value"] == 2
        assert snap["gauges"]["pool.rebuild.busy_disks"]["value"] == 2

    def test_publish_is_noop_when_tracing_off(self):
        m = DiskLoadMap(3)
        m.add(0)
        m.publish("pool.rebuild")  # no process recorder enabled: must not raise


class TestValidation:
    """Regression tests for the billing-path input bugs (PR 8)."""

    def test_add_many_empty_is_noop(self):
        # regression: np.asarray([]) is float64 and bincount raised TypeError
        m = DiskLoadMap(5)
        m.add_many([], 3)
        m.add_many(np.asarray([], dtype=np.int64))
        assert m.total == 0

    def test_add_many_accepts_lists_and_int32(self):
        m = DiskLoadMap(5)
        m.add_many([1, 1, 4], 2)
        m.add_many(np.asarray([0], dtype=np.int32))
        assert list(m.reads) == [1, 4, 0, 0, 2]

    def test_add_many_out_of_range_named(self):
        m = DiskLoadMap(5)
        with pytest.raises(IndexError, match=r"pool disk 7"):
            m.add_many([0, 7])
        with pytest.raises(IndexError, match=r"pool disk -2"):
            m.add_many([-2])
        assert m.total == 0  # failed adds must not partially bill

    def test_add_vector_integral_floats_fold_in(self):
        # regression: float64 vectors raised UFuncTypeError on +=
        m = DiskLoadMap(4)
        m.add_vector(np.asarray([1.0, 0.0, 2.0, 0.0]))
        assert list(m.reads) == [1, 0, 2, 0]
        assert m.reads.dtype == np.int64

    def test_add_vector_non_integral_rejected(self):
        m = DiskLoadMap(4)
        with pytest.raises(ValueError, match="non-integral"):
            m.add_vector(np.asarray([0.5, 0.0, 0.0, 0.0]))

    def test_add_vector_negative_rejected(self):
        m = DiskLoadMap(4)
        with pytest.raises(ValueError, match="negative"):
            m.add_vector(np.asarray([0, -1, 0, 0]))

    def test_add_negative_disk_rejected(self):
        # regression: add(-1, n) silently billed the last disk
        m = DiskLoadMap(4)
        with pytest.raises(IndexError, match=r"pool disk -1"):
            m.add(-1, 5)
        with pytest.raises(IndexError, match=r"pool disk 4"):
            m.add(4)
        assert m.total == 0


class _FakeTopo:
    """Minimal duck-typed topology: 8 disks, 4 machines, 2 racks."""

    n_disks, n_machines, n_racks = 8, 4, 2

    def __init__(self):
        self.machine_of_disk = np.arange(8) // 2
        self.rack_of_machine = np.arange(4) // 2


class TestLinkLoadMap:
    def test_add_bills_all_levels(self):
        from repro.obs import LinkLoadMap

        lm = LinkLoadMap(_FakeTopo())
        lm.add(0, 3)
        lm.add_many([5, 5, 7], 2)
        assert lm.total == 3 + 6
        assert lm.disk_reads[0] == 3 and lm.disk_reads[5] == 4
        assert lm.machine_reads[0] == 3 and lm.machine_reads[2] == 4
        assert list(lm.rack_reads) == [3, 6]
        lm.check_rollup()

    def test_add_vector_and_rollup(self):
        from repro.obs import LinkLoadMap

        lm = LinkLoadMap(_FakeTopo())
        lm.add_vector(np.asarray([1.0, 2, 3, 4, 5, 6, 7, 8]))
        assert lm.total == 36
        assert lm.max_per_disk == 8
        assert lm.max_per_machine == 15
        assert lm.max_per_rack == 26
        lm.check_rollup()

    def test_same_validation_as_disk_map(self):
        from repro.obs import LinkLoadMap

        lm = LinkLoadMap(_FakeTopo())
        lm.add_many([], 9)
        assert lm.total == 0
        with pytest.raises(IndexError, match="pool disk -1"):
            lm.add(-1)
        with pytest.raises(IndexError, match="pool disk 8"):
            lm.add_many([8])
        with pytest.raises(ValueError, match="non-integral"):
            lm.add_vector(np.full(8, 0.25))

    def test_publish(self):
        from repro.obs import LinkLoadMap

        lm = LinkLoadMap(_FakeTopo())
        lm.add_many([0, 1, 2, 3], 2)
        rec = Recorder("t")
        lm.publish("topo.rebuild", rec=rec)
        snap = rec.snapshot()
        assert snap["counters"]["topo.rebuild.reads"] == 8
        assert snap["gauges"]["topo.rebuild.max_per_rack"]["value"] == 8


class TestPropertyInvariants:
    """Hypothesis invariants shared by both load maps."""

    @given(
        st.lists(st.integers(min_value=0, max_value=7), max_size=60),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_and_spread(self, disks, load):
        m = DiskLoadMap(8)
        m.add_many(disks, load)
        assert m.total == m.reads.sum() == len(disks) * load
        assert m.max_per_disk == m.reads.max(initial=0)
        if m.busy_disks:
            assert m.spread >= 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=7), max_size=60),
        st.integers(min_value=1, max_value=9),
    )
    @settings(max_examples=60, deadline=None)
    def test_linkmap_rollup_consistent(self, disks, load):
        from repro.obs import LinkLoadMap

        lm = LinkLoadMap(_FakeTopo())
        lm.add_many(disks, load)
        lm.check_rollup()
        assert lm.total == len(disks) * load
        assert lm.max_per_rack >= lm.max_per_machine >= 0
        assert lm.rack_reads.sum() == lm.disk_reads.sum()
