"""simulate_fleet / run_fleet: validation, dispatch, end-to-end arms."""

import pytest

from repro.codes import make_code
from repro.fleet import (
    QosPolicy,
    default_engine,
    make_criticality,
    run_fleet,
    simulate_fleet,
    uniform_windows,
)
from repro.placement import make_placement


class TestValidation:
    def test_zero_windows_allowed_and_never_lose(self):
        """W=0 is the instant-repair baseline, not an error."""
        r = simulate_fleet(
            uniform_windows(8, 0.0),
            tolerance=1,
            mission_hours=8760.0,
            disk_mttf_hours=500.0,
            trials=100,
            seed=1,
            engine="vector",
        )
        assert r.losses == 0
        assert r.degraded_hours == 0.0
        assert r.failures_total > 0

    def test_negative_window_rejected(self):
        w = uniform_windows(4, 1.0)
        w.hours[2] = -0.5
        with pytest.raises(ValueError, match=">= 0"):
            simulate_fleet(w, tolerance=1, trials=1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tolerance": -1},
            {"tolerance": 1, "disk_mttf_hours": 0.0},
            {"tolerance": 1, "mission_hours": -1.0},
            {"tolerance": 1, "trials": 0},
            {"tolerance": 1, "engine": "gpu"},
        ],
    )
    def test_bad_arguments(self, kwargs):
        with pytest.raises(ValueError):
            simulate_fleet(uniform_windows(4, 1.0), **kwargs)

    def test_criticality_disk_count_must_match(self):
        placement = make_placement("declustered", 20, 60, 5)
        crit = make_criticality(placement, 2)
        with pytest.raises(ValueError, match="covers"):
            simulate_fleet(
                uniform_windows(8, 1.0), tolerance=2, criticality=crit,
                trials=1,
            )


class TestEngineDispatch:
    def test_default_engine_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_PURE_PYTHON", raising=False)
        assert default_engine() == "vector"
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        assert default_engine() == "scalar"

    def test_auto_respects_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PURE_PYTHON", "1")
        r = simulate_fleet(
            uniform_windows(4, 1.0), tolerance=1, trials=2,
            mission_hours=100.0, disk_mttf_hours=50.0, engine="auto",
        )
        assert r.engine == "scalar"

    def test_explicit_engine_recorded(self):
        for engine in ("vector", "scalar"):
            r = simulate_fleet(
                uniform_windows(4, 1.0), tolerance=1, trials=2,
                mission_hours=100.0, disk_mttf_hours=50.0, engine=engine,
            )
            assert r.engine == engine


class TestSemantics:
    def test_single_array_semantics_without_criticality(self):
        """criticality=None: any tolerance+1 concurrent failures lose."""
        kwargs = dict(
            mission_hours=8760.0, disk_mttf_hours=2000.0, trials=150, seed=3,
            engine="vector",
        )
        harsh = simulate_fleet(
            uniform_windows(16, 48.0), tolerance=0, **kwargs
        )
        tolerant = simulate_fleet(
            uniform_windows(16, 48.0), tolerance=3, **kwargs
        )
        assert harsh.losses > tolerant.losses

    def test_criticality_spares_disjoint_failures(self):
        """Flat groups: cross-group double failures are not losses."""
        placement = make_placement("flat", 20, 60, 5)
        crit = make_criticality(placement, 1)
        kwargs = dict(
            tolerance=1, mission_hours=8760.0, disk_mttf_hours=400.0,
            trials=200, seed=5, engine="vector",
        )
        with_crit = simulate_fleet(
            uniform_windows(20, 24.0), criticality=crit, **kwargs
        )
        without = simulate_fleet(uniform_windows(20, 24.0), **kwargs)
        assert with_crit.losses <= without.losses

    def test_longer_windows_lose_more(self):
        kwargs = dict(
            tolerance=1, mission_hours=8760.0, disk_mttf_hours=1000.0,
            trials=300, seed=11, engine="vector",
        )
        short = simulate_fleet(uniform_windows(16, 2.0), **kwargs)
        long = simulate_fleet(uniform_windows(16, 100.0), **kwargs)
        assert short.losses < long.losses

    def test_observed_hours_stop_at_loss(self):
        r = simulate_fleet(
            uniform_windows(16, 200.0), tolerance=0,
            mission_hours=8760.0, disk_mttf_hours=100.0, trials=50, seed=2,
            engine="vector",
        )
        assert r.losses == 50
        assert r.observed_hours < 50 * 8760.0


class TestRunFleet:
    def test_end_to_end(self):
        code = make_code("rdp", 5)
        placement = make_placement("declustered", 24, 100, code.layout.n_disks)
        r = run_fleet(
            code,
            placement,
            policy=QosPolicy(capacity_scale=1e6),
            mission_hours=8760.0,
            disk_mttf_hours=2000.0,
            trials=50,
            seed=1,
        )
        assert r.trials == 50
        assert r.n_disks == 24
        assert r.windows_mean_hours > 0
        assert r.label == f"{code.name}/{placement.name}/u"

    def test_engines_agree_end_to_end(self):
        code = make_code("rdp", 5)
        placement = make_placement("declustered", 24, 100, code.layout.n_disks)
        kwargs = dict(
            policy=QosPolicy(capacity_scale=2e6),
            mission_hours=8760.0,
            disk_mttf_hours=800.0,
            trials=60,
            seed=4,
        )
        v = run_fleet(code, placement, engine="vector", **kwargs)
        s = run_fleet(code, placement, engine="scalar", **kwargs)
        assert v.losses == s.losses
        assert v.failures_total == s.failures_total
        assert v.observed_hours == s.observed_hours
        assert v.degraded_hours == s.degraded_hours
