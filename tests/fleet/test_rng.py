"""Counter-based RNG: scalar/vector bitwise parity and sanity."""

import numpy as np
import pytest

from repro.fleet.rng import (
    exponential_np,
    exponential_scalar,
    uniform_np,
    uniform_scalar,
)


class TestUniform:
    def test_range(self):
        for coords in [(0, 0, 0, 0), (1, 2, 3, 4), (2**63, 10**6, 999, 50)]:
            u = uniform_scalar(*coords)
            assert 0.0 <= u < 1.0

    def test_deterministic(self):
        assert uniform_scalar(7, 3, 5, 2) == uniform_scalar(7, 3, 5, 2)

    def test_coordinates_matter(self):
        base = uniform_scalar(7, 3, 5, 2)
        assert uniform_scalar(8, 3, 5, 2) != base
        assert uniform_scalar(7, 4, 5, 2) != base
        assert uniform_scalar(7, 3, 6, 2) != base
        assert uniform_scalar(7, 3, 5, 3) != base

    def test_scalar_vector_bitwise_parity(self):
        trials = np.repeat(np.arange(5, dtype=np.int64), 7)
        disks = np.tile(np.arange(7, dtype=np.int64), 5)
        for seed in (0, 1, 12345, 2**62):
            for draw in (0, 1, 17):
                batch = uniform_np(seed, trials, disks, draw)
                singles = np.array(
                    [
                        uniform_scalar(seed, int(t), int(d), draw)
                        for t, d in zip(trials, disks)
                    ]
                )
                assert np.array_equal(batch, singles)

    def test_roughly_uniform(self):
        n = 20_000
        us = uniform_np(
            3, np.zeros(n, dtype=np.int64), np.arange(n, dtype=np.int64), 0
        )
        assert abs(us.mean() - 0.5) < 0.01
        assert abs(np.mean(us < 0.25) - 0.25) < 0.02


class TestExponential:
    def test_scalar_vector_bitwise_parity(self):
        trials = np.repeat(np.arange(4, dtype=np.int64), 3)
        disks = np.tile(np.arange(3, dtype=np.int64), 4)
        batch = exponential_np(1000.0, 9, trials, disks, 2)
        singles = np.array(
            [
                exponential_scalar(1000.0, 9, int(t), int(d), 2)
                for t, d in zip(trials, disks)
            ]
        )
        assert np.array_equal(batch, singles)

    def test_positive(self):
        xs = exponential_np(
            500.0,
            1,
            np.zeros(1000, dtype=np.int64),
            np.arange(1000, dtype=np.int64),
            0,
        )
        assert np.all(xs > 0)

    def test_mean(self):
        n = 50_000
        xs = exponential_np(
            2000.0,
            4,
            np.zeros(n, dtype=np.int64),
            np.arange(n, dtype=np.int64),
            0,
        )
        assert xs.mean() == pytest.approx(2000.0, rel=0.03)
