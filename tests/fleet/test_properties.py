"""Property suite: the numpy core is pinned to the scalar reference.

Same seed, same fleet, same physics -> the two engines must return
*identical* per-trial outcome arrays (losses, loss times, failure
counts, degraded hours, observed hours).  The counter-based RNG makes
this an exact equality, degraded hours included — both engines add the
same busy-period terms in the same chronological order.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.crit import make_criticality
from repro.fleet.scalar import run_trials_scalar
from repro.fleet.vector import run_trials_vector
from repro.placement import make_placement


def _assert_engines_identical(
    windows, tolerance, criticality, mission, mttf, trials, seed
):
    scalar = run_trials_scalar(
        windows, tolerance, criticality, mission, mttf, trials, seed
    )
    vector = run_trials_vector(
        windows, tolerance, criticality, mission, mttf, trials, seed
    )
    names = ("lost", "loss_time", "failures", "degraded", "observed")
    for name, s, v in zip(names, scalar, vector):
        assert np.array_equal(s, v), f"{name} diverged"


@settings(max_examples=40, deadline=None)
@given(
    n_disks=st.integers(min_value=1, max_value=24),
    window=st.sampled_from([0.0, 0.5, 5.0, 24.0, 200.0]),
    tolerance=st.integers(min_value=0, max_value=3),
    mttf=st.sampled_from([50.0, 400.0, 3000.0]),
    mission=st.sampled_from([10.0, 1000.0, 8760.0]),
    trials=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_uniform_fleet_engines_identical(
    n_disks, window, tolerance, mttf, mission, trials, seed
):
    windows = np.full(n_disks, window)
    _assert_engines_identical(
        windows, tolerance, None, mission, mttf, trials, seed
    )


@settings(max_examples=20, deadline=None)
@given(
    tolerance=st.integers(min_value=0, max_value=2),
    mttf=st.sampled_from([100.0, 1500.0]),
    trials=st.integers(min_value=1, max_value=25),
    seed=st.integers(min_value=0, max_value=2**32),
    data=st.data(),
)
def test_heterogeneous_windows_engines_identical(
    tolerance, mttf, trials, seed, data
):
    n_disks = data.draw(st.integers(min_value=2, max_value=16))
    windows = np.array(
        data.draw(
            st.lists(
                st.sampled_from([0.0, 1.0, 12.0, 72.0]),
                min_size=n_disks,
                max_size=n_disks,
            )
        )
    )
    _assert_engines_identical(
        windows, tolerance, None, 8760.0, mttf, trials, seed
    )


@settings(max_examples=15, deadline=None)
@given(
    placement_name=st.sampled_from(["flat", "declustered", "d3"]),
    window=st.sampled_from([5.0, 48.0]),
    mttf=st.sampled_from([80.0, 600.0]),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_criticality_oracle_engines_identical(
    placement_name, window, mttf, seed
):
    placement = make_placement(placement_name, 20, 60, 5)
    crit = make_criticality(placement, 2)
    windows = np.full(20, window)
    _assert_engines_identical(windows, 2, crit, 8760.0, mttf, 20, seed)


class TestEdgeFleets:
    def test_one_disk_fleet(self):
        _assert_engines_identical(
            np.array([10.0]), 0, None, 5000.0, 300.0, 50, 9
        )

    def test_tolerance_zero_everything_loses(self):
        windows = np.full(4, 50.0)
        lost, *_ = run_trials_vector(windows, 0, None, 8760.0, 100.0, 30, 2)
        assert lost.all()
        _assert_engines_identical(windows, 0, None, 8760.0, 100.0, 30, 2)

    def test_mission_shorter_than_first_failure(self):
        """Mission ends before anything breaks: no events at all."""
        windows = np.full(8, 5.0)
        scalar = run_trials_scalar(windows, 1, None, 0.001, 1e9, 10, 3)
        vector = run_trials_vector(windows, 1, None, 0.001, 1e9, 10, 3)
        for s, v in zip(scalar, vector):
            assert np.array_equal(s, v)
        lost, _lt, failures, degraded, observed = vector
        assert not lost.any()
        assert failures.sum() == 0
        assert degraded.sum() == 0.0
        assert np.all(observed == 0.001)

    def test_zero_windows(self):
        _assert_engines_identical(
            np.zeros(6), 1, None, 8760.0, 200.0, 40, 7
        )
