"""Tests for the fleet-scale durability Monte-Carlo."""
