"""FleetResult arithmetic: Wilson intervals, nines, MTTDL."""

import math

import pytest

from repro.fleet.result import FleetResult, wilson_interval


def _result(losses=5, trials=100, **over):
    kwargs = dict(
        engine="vector",
        label="test",
        trials=trials,
        n_disks=10,
        mission_hours=8760.0,
        losses=losses,
        failures_total=40,
        observed_hours=trials * 8760.0,
        degraded_hours=100.0,
        wall_s=0.5,
        windows_mean_hours=12.0,
        windows_max_hours=24.0,
    )
    kwargs.update(over)
    return FleetResult(**kwargs)


class TestWilson:
    def test_contains_point_estimate(self):
        lo, hi = wilson_interval(5, 100)
        assert lo < 0.05 < hi

    def test_zero_losses_nonzero_width(self):
        lo, hi = wilson_interval(0, 100)
        assert lo == 0.0
        assert 0.0 < hi < 0.05

    def test_all_losses(self):
        lo, hi = wilson_interval(100, 100)
        assert hi == pytest.approx(1.0)
        assert 0.95 < lo < 1.0

    def test_shrinks_with_n(self):
        lo1, hi1 = wilson_interval(5, 100)
        lo2, hi2 = wilson_interval(50, 1000)
        assert hi2 - lo2 < hi1 - lo1

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 4)
        with pytest.raises(ValueError):
            wilson_interval(-1, 4)


class TestFleetResult:
    def test_loss_probability(self):
        assert _result(losses=5, trials=100).loss_probability == 0.05

    def test_nines(self):
        assert _result(losses=1, trials=1000).nines() == pytest.approx(3.0)
        assert _result(losses=0).nines() == math.inf

    def test_nines_ci_ordering(self):
        r = _result(losses=5, trials=100)
        lo9, hi9 = r.nines_ci()
        assert lo9 < r.nines() < hi9

    def test_mttdl(self):
        r = _result(losses=4, trials=100)
        assert r.mttdl_hours == pytest.approx(100 * 8760.0 / 4)
        assert _result(losses=0).mttdl_hours == math.inf

    def test_disk_years(self):
        r = _result(trials=100)
        assert r.disk_years == pytest.approx(100 * 10)
        assert r.disk_years_per_s == pytest.approx(1000 / 0.5)

    def test_degraded_fraction_uses_full_mission(self):
        r = _result(trials=100, degraded_hours=8760.0)
        assert r.mean_degraded_fraction == pytest.approx(0.01)

    def test_ci_overlaps(self):
        a = _result(losses=5, trials=100)
        b = _result(losses=7, trials=100)
        far = _result(losses=90, trials=100)
        assert a.ci_overlaps(b)
        assert b.ci_overlaps(a)
        assert not a.ci_overlaps(far)

    def test_summary_keys(self):
        s = _result().summary()
        for key in (
            "engine",
            "loss_probability",
            "loss_ci_low",
            "loss_ci_high",
            "nines",
            "mttdl_hours",
            "disk_years_per_s",
        ):
            assert key in s
