"""Repair-window pricing through the recovery/placement/topology stack."""

import numpy as np
import pytest

from repro.codes import make_code
from repro.fleet.windows import (
    QosPolicy,
    price_repair_windows,
    uniform_windows,
)
from repro.placement import make_placement
from repro.topology import Topology


class TestQosPolicy:
    def test_defaults(self):
        p = QosPolicy()
        assert p.rebuild_headroom == 1.0
        assert p.capacity_scale == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"disk_bw_mb_s": 0.0},
            {"disk_bw_mb_s": -1.0},
            {"rebuild_headroom": 0.0},
            {"rebuild_headroom": 1.5},
            {"detect_hours": -0.1},
            {"capacity_scale": 0.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            QosPolicy(**kwargs)

    def test_hashable(self):
        """Frozen + hashable: policies key the pricing memo."""
        assert hash(QosPolicy()) == hash(QosPolicy())


class TestUniformWindows:
    def test_shape_and_value(self):
        w = uniform_windows(8, 12.0)
        assert w.n_disks == 8
        assert w.mean_hours == 12.0
        assert w.max_hours == 12.0

    def test_zero_allowed(self):
        assert uniform_windows(4, 0.0).max_hours == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_windows(0, 1.0)
        with pytest.raises(ValueError):
            uniform_windows(4, -1.0)


class TestPriceRepairWindows:
    def test_basic_pricing(self):
        code = make_code("rdp", 5)
        placement = make_placement("declustered", 24, 100, code.layout.n_disks)
        w = price_repair_windows(code, placement, cache=False)
        assert w.n_disks == 24
        assert np.all(w.hours >= 0)
        assert w.max_hours > 0
        assert not w.priced_with_topology

    def test_u_scheme_shrinks_bottleneck(self):
        """The paper's claim, priced: U beats naive on the window."""
        code = make_code("rdp", 5)
        placement = make_placement("declustered", 24, 100, code.layout.n_disks)
        naive = price_repair_windows(
            code, placement, algorithm="naive", cache=False
        )
        u = price_repair_windows(code, placement, algorithm="u", cache=False)
        assert u.max_hours <= naive.max_hours

    def test_headroom_stretches_window(self):
        code = make_code("rdp", 5)
        placement = make_placement("flat", 24, 100, code.layout.n_disks)
        full = price_repair_windows(code, placement, cache=False)
        half = price_repair_windows(
            code,
            placement,
            policy=QosPolicy(rebuild_headroom=0.5),
            cache=False,
        )
        assert half.max_hours == pytest.approx(2 * full.max_hours)

    def test_detect_hours_added(self):
        code = make_code("rdp", 5)
        placement = make_placement("flat", 24, 100, code.layout.n_disks)
        base = price_repair_windows(code, placement, cache=False)
        lagged = price_repair_windows(
            code, placement, policy=QosPolicy(detect_hours=2.0), cache=False
        )
        assert lagged.max_hours == pytest.approx(base.max_hours + 2.0)

    def test_memoised(self):
        code = make_code("rdp", 5)
        placement = make_placement("declustered", 24, 100, code.layout.n_disks)
        first = price_repair_windows(code, placement)
        second = price_repair_windows(code, placement)
        assert second is first
        uncached = price_repair_windows(code, placement, cache=False)
        assert uncached is not first
        assert np.array_equal(uncached.hours, first.hours)

    def test_width_mismatch_rejected(self):
        code = make_code("rdp", 5)  # 5 disks
        placement = make_placement("flat", 20, 50, 4)
        with pytest.raises(ValueError, match="width"):
            price_repair_windows(code, placement, cache=False)

    def test_topology_pricing(self):
        code = make_code("rdp", 5)
        topo = Topology.parse("2x3x4")  # 24 disks
        placement = make_placement(
            "declustered", 24, 100, code.layout.n_disks, topology=topo
        )
        flat_priced = price_repair_windows(
            code, placement, use_topology=False, cache=False
        )
        topo_priced = price_repair_windows(code, placement, cache=False)
        assert topo_priced.priced_with_topology
        # network links can only slow the rebuild down, never speed it up
        assert topo_priced.max_hours >= flat_priced.max_hours

    def test_use_topology_without_topology_rejected(self):
        code = make_code("rdp", 5)
        placement = make_placement("flat", 24, 100, code.layout.n_disks)
        with pytest.raises(ValueError, match="topology"):
            price_repair_windows(code, placement, use_topology=True)
