"""Stripe-coverage criticality: the exact which-disks loss test."""

import numpy as np
import pytest

from repro.fleet.crit import StripeCriticality, make_criticality
from repro.placement import make_placement


def _placement(name="declustered", n_pool=20, n_stripes=60, width=5):
    return make_placement(name, n_pool, n_stripes, width)


class TestInverseMap:
    def test_matches_stripes_of_disk(self):
        placement = _placement()
        crit = StripeCriticality(placement, 2)
        for disk in range(placement.n_pool):
            expected, _slots = placement.stripes_of_disk(disk)
            got = np.sort(crit._stripes(disk))
            assert np.array_equal(got, np.sort(expected))

    def test_max_overlap_counts_coresident_disks(self):
        placement = _placement()
        crit = StripeCriticality(placement, 2)
        stripe_disks = [int(d) for d in placement.table[0]]
        assert crit.max_overlap(stripe_disks) == len(stripe_disks)
        assert crit.max_overlap(stripe_disks[:2]) >= 2
        assert crit.max_overlap([stripe_disks[0]]) == 1
        assert crit.max_overlap([]) == 0


class TestIsCritical:
    def test_small_down_sets_never_critical(self):
        crit = StripeCriticality(_placement(), 2)
        assert not crit.is_critical([0])
        assert not crit.is_critical([0, 1])

    def test_full_stripe_down_is_critical(self):
        placement = _placement()
        crit = StripeCriticality(placement, 2)
        assert crit.is_critical(placement.table[0])

    def test_flat_groups_isolate_failures(self):
        """Disks from different flat groups never share a stripe."""
        placement = _placement("flat", n_pool=20, n_stripes=60, width=5)
        crit = StripeCriticality(placement, 2)
        # 0-4 is group 0, 5-9 group 1: three down across groups is safe,
        # three down inside one group exceeds tolerance 2
        assert not crit.is_critical([0, 5, 10])
        assert crit.is_critical([0, 1, 2])

    def test_tolerance_zero(self):
        placement = _placement()
        crit = StripeCriticality(placement, 0)
        # every pool disk hosts at least one stripe in this dense regime
        assert crit.is_critical([0])

    def test_unplaced_disk_not_critical(self):
        """A pool disk hosting no stripes cannot lose data."""
        # 1 stripe of width 5 on a 20-disk pool leaves 15 disks empty
        placement = _placement(n_pool=20, n_stripes=1)
        crit = StripeCriticality(placement, 0)
        used = set(int(d) for d in placement.table[0])
        empty = next(d for d in range(20) if d not in used)
        assert not crit.is_critical([empty])

    def test_memoised(self):
        placement = _placement()
        crit = StripeCriticality(placement, 2)
        down = [int(d) for d in placement.table[0][:4]]
        first = crit.is_critical(down)
        assert frozenset(down) in crit._memo
        assert crit.is_critical(tuple(reversed(down))) == first

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            StripeCriticality(_placement(), -1)


class TestMakeCriticality:
    def test_none_placement(self):
        assert make_criticality(None, 2) is None

    def test_placed_pool(self):
        crit = make_criticality(_placement(), 2)
        assert isinstance(crit, StripeCriticality)
        assert crit.tolerance == 2
