"""Shared hypothesis strategies for the test-suite."""

from hypothesis import strategies as st

from repro.codes import (
    BlaumRothCode,
    CauchyRSCode,
    EvenOddCode,
    Liber8tionCode,
    LiberationCode,
    Raid4Code,
    RdpCode,
    StarCode,
)

#: small instances of every family (cheap enough for property tests)
small_codes = st.sampled_from(
    [
        Raid4Code(4, 3),
        RdpCode(5),
        RdpCode(7),
        RdpCode(7, n_data=4),
        EvenOddCode(5),
        EvenOddCode(7, n_data=4),
        BlaumRothCode(5),
        BlaumRothCode(7, n_data=5),
        LiberationCode(5),
        LiberationCode(7, n_data=5),
        Liber8tionCode(5),
        StarCode(5),
        StarCode(7, n_data=4),
        CauchyRSCode(4, 2, w=4),
        CauchyRSCode(4, 3, w=4),
    ]
)

#: RAID-6 instances only (m = 2)
raid6_codes = st.sampled_from(
    [RdpCode(5), EvenOddCode(5), BlaumRothCode(5), LiberationCode(5)]
)


@st.composite
def code_and_data_disk(draw, codes=small_codes):
    """A code together with a valid data-disk index."""
    code = draw(codes)
    disk = draw(st.integers(0, code.layout.n_data - 1))
    return code, disk


@st.composite
def code_and_any_disk(draw, codes=small_codes):
    """A code together with any disk index (parity included)."""
    code = draw(codes)
    disk = draw(st.integers(0, code.layout.n_disks - 1))
    return code, disk
