#!/usr/bin/env python
"""Heterogeneous recovery (paper Sec. V-D): weighted U-Algorithm.

Cloud arrays mix disk generations: some spindles read twice as fast as
others.  The plain U-Algorithm balances *element counts*; the weighted
variant balances *read time*, shifting load away from slow disks.  This
example builds an EVENODD array where two disks are 2x slower, generates
uniform and weighted U-Schemes for a failed disk, and times both on the
heterogeneous simulated array.

Run:  python examples/heterogeneous_cloud.py
"""

from repro import SAVVIO_10K3, make_code, simulate_stack_recovery
from repro.recovery import u_scheme_for_mask


def main() -> None:
    code = make_code("evenodd", 10)  # 8 data + 2 parity
    lay = code.layout
    failed_disk = 0
    failed = lay.disk_mask(failed_disk)

    # disks 5 and 6 are an older, 2x slower generation
    slow_disks = {5, 6}
    speed = [0.5 if d in slow_disks else 1.0 for d in range(lay.n_disks)]
    disk_params = [SAVVIO_10K3.scaled(s) for s in speed]
    # read cost of one element on disk d is 1/speed
    weights = [1.0 / s for s in speed]

    uniform = u_scheme_for_mask(code, failed)
    weighted = u_scheme_for_mask(code, failed, weights=weights)

    print(code.describe())
    print(f"slow disks: {sorted(slow_disks)} (2x slower)\n")
    header = "  ".join(f"d{d}" for d in range(lay.n_disks))
    print(f"{'scheme':10s}  {header}   max_cost")
    for name, scheme in (("uniform-U", uniform), ("weighted-U", weighted)):
        loads = "  ".join(f"{load:2d}" for load in scheme.loads)
        print(f"{name:10s}  {loads}   {scheme.weighted_max_load(weights):6.1f}")

    print("\nSimulated recovery on the heterogeneous array:")
    for name, scheme in (("uniform-U", uniform), ("weighted-U", weighted)):
        result = simulate_stack_recovery(code, [scheme], params=disk_params)
        print(f"  {name:10s}: {result.speed_mb_s:6.1f} MB/s")

    speedup = (
        simulate_stack_recovery(code, [weighted], params=disk_params).speed_mb_s
        / simulate_stack_recovery(code, [uniform], params=disk_params).speed_mb_s
        - 1.0
    )
    print(f"\nweighted scheme is {speedup * 100:.1f}% faster on this array")


if __name__ == "__main__":
    main()
