#!/usr/bin/env python
"""On-line recovery under user load (event-driven simulation).

Storage systems recover while still serving applications (Holland [5],
paper Sec. I).  This example replays identical Poisson user traffic against
the same failed RDP array recovering with Khan's scheme vs. the U-Scheme,
and reports both recovery completion time and user latency — showing that
load-balanced recovery reduces the window of vulnerability *and* treats the
foreground workload more gently.

Run:  python examples/online_recovery.py
"""

from repro import make_code
from repro.disksim import EventDrivenArray, PoissonWorkload
from repro.recovery import khan_scheme, u_scheme


def main() -> None:
    code = make_code("rdp", 10)  # 8 data + 2 parity
    lay = code.layout
    failed_disk = 0
    stripes = 40

    workload = PoissonWorkload(
        rate_per_s=8.0, n_disks=lay.n_disks, k_rows=lay.k_rows, seed=2013
    )
    requests = workload.generate(duration_s=600.0)

    print(code.describe())
    print(f"user traffic: {len(requests)} Poisson reads @8/s; "
          f"recovering {stripes} stripes of disk {failed_disk}\n")

    print(f"{'scheme':6s} {'recovery_done':>14s} {'user_mean_lat':>14s} "
          f"{'user_p95_lat':>13s}")
    results = {}
    for name, fn in (("khan", khan_scheme), ("u", u_scheme)):
        scheme = fn(code, failed_disk, depth=1)
        array = EventDrivenArray(lay.n_disks)
        res = array.run_online_recovery(
            code, [scheme], stripes=stripes, user_requests=list(requests)
        )
        results[name] = res
        print(f"{name:6s} {res.recovery_finish_s:12.1f} s "
              f"{res.user_mean_latency_s * 1000:11.1f} ms "
              f"{res.user_p95_latency_s * 1000:10.1f} ms")

    gain = 1.0 - results["u"].recovery_finish_s / results["khan"].recovery_finish_s
    print(f"\nU-scheme shortens the window of vulnerability by {gain*100:.1f}% "
          "under this workload")


if __name__ == "__main__":
    main()
