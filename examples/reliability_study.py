#!/usr/bin/env python
"""What a 20% faster recovery buys: the window of vulnerability.

The paper's motivation (Sec. I): recovery time bounds the window in which a
second (or third) failure can destroy data.  This study chains the whole
library — scheme generation, simulated recovery speed, rebuild duration,
and a Monte-Carlo failure/repair timeline — to express the U-Scheme's gain
as a reduction in ten-year data-loss probability.

Run:  python examples/reliability_study.py
"""

from repro import make_code, simulate_stack_recovery
from repro.disksim.reliability import (
    recovery_hours_for_disk,
    simulate_reliability,
)
from repro.recovery import RecoveryPlanner

DISK_GB = 300.0          # the paper's drives
MTTF_HOURS = 20_000.0    # stressed (real drives are ~1M h) so the Monte-
STRESS = 50.0            # Carlo signal is visible with modest trial counts
TRIALS = 1200


def main() -> None:
    code = make_code("rdp", 12)
    print(code.describe())
    print(f"{DISK_GB:.0f} GB disks, stressed MTTF {MTTF_HOURS:.0f} h, "
          f"window x{STRESS:.0f}, {TRIALS} ten-year missions\n")

    print(f"{'scheme':6s} {'speed':>9s} {'rebuild':>9s} {'P(loss)':>9s} "
          f"{'degraded':>9s} {'nines':>6s}")
    baseline = None
    for alg in ("naive", "khan", "c", "u"):
        schemes = RecoveryPlanner(code, alg, depth=1).all_data_disk_schemes()
        speed = simulate_stack_recovery(code, schemes).speed_mb_s
        hours = recovery_hours_for_disk(DISK_GB, speed)
        rel = simulate_reliability(
            code, hours * STRESS, disk_mttf_hours=MTTF_HOURS,
            trials=TRIALS, seed=4,
        )
        nines = rel.nines()
        print(f"{alg:6s} {speed:6.1f}MB/s {hours:7.2f} h "
              f"{rel.data_loss_probability:9.4f} "
              f"{rel.mean_degraded_fraction*100:8.2f}% "
              f"{nines if nines != float('inf') else 99:6.2f}")
        if alg == "khan":
            baseline = rel.data_loss_probability

    print("\nlower recovery time -> shorter windows -> fewer losses; the "
          "load-balanced schemes turn their speedup directly into nines")


if __name__ == "__main__":
    main()
