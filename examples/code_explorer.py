#!/usr/bin/env python
"""Survey every supported erasure-code family.

For each family at a given array width: geometry, generator density,
verified fault tolerance, and the recovery cost of the three scheme
generators on the first data disk — a quick map of how code structure
drives recoverability cost (regular codes balance for free; irregular ones
need the U-Algorithm).

Run:  python examples/code_explorer.py [n_disks]
"""

import sys

from repro import list_families, make_code
from repro.recovery import khan_scheme, u_scheme


def main() -> None:
    n_disks = int(sys.argv[1]) if len(sys.argv) > 1 else 9
    print(f"{'family':12s} {'geometry':>12s} {'k':>3s} {'density':>8s} "
          f"{'ft':>3s} {'khan(max/tot)':>14s} {'u(max/tot)':>11s}")
    for family in list_families():
        try:
            code = make_code(family, n_disks)
        except ValueError as exc:
            print(f"{family:12s} unavailable at {n_disks} disks ({exc})")
            continue
        lay = code.layout
        assert code.verify_fault_tolerance(), family
        k = khan_scheme(code, 0, depth=1)
        u = u_scheme(code, 0, depth=1)
        geometry = f"{lay.n_data}+{lay.m_parity}"
        print(f"{family:12s} {geometry:>12s} {lay.k_rows:3d} "
              f"{code.density():8d} {code.fault_tolerance:3d} "
              f"{k.max_load:7d}/{k.total_reads:<6d} {u.max_load:4d}/{u.total_reads:<6d}")


if __name__ == "__main__":
    main()
