#!/usr/bin/env python
"""Bring your own erasure code — the paper's "any erasure code" promise.

A code is just its calculation equations.  This example defines a slope-3
"weave" RAID-6 from scratch (row parity + slope-3 lines with an EVENODD
style adjuster — not one of the library's built-ins), and immediately gets
everything the library offers: load-balanced recovery schemes, byte-exact
reconstruction, and simulated recovery speed — no library changes required.

Note the construction detail the library forces you to get right: a second
parity made of *pure permutation* lines (no adjuster) is never
2-fault-tolerant — sums of circulant permutations are singular — and the
constructor's exhaustive MDS check would refuse it.

Run:  python examples/custom_code.py
"""

from typing import List

import numpy as np

from repro import Reconstructor, StripeCodec, simulate_stack_recovery
from repro.codes.base import ErasureCode
from repro.codes.layout import CodeLayout
from repro.recovery import khan_scheme, u_scheme


class WeavedParityCode(ErasureCode):
    """RAID-6 with row parity P and a slope-3 weave parity Q.

    Data cell ``(r, c)`` lies on weave line ``(r + 3c) mod p``; line
    ``p - 1`` is the adjuster folded into every Q element (the EVENODD
    trick, at a slope the library does not ship).  The constructor verifies
    2-fault tolerance exhaustively and refuses invalid geometry, so you
    cannot accidentally deploy a non-code.
    """

    name = "weaved"
    SLOPE = 3

    def __init__(self, p: int, n_data: int) -> None:
        self.p = p
        super().__init__(CodeLayout(n_data, 2, p - 1), fault_tolerance=2)
        if not self.verify_fault_tolerance():
            raise ValueError(
                f"slope-{self.SLOPE} weave is not 2-fault-tolerant for "
                f"p={p}, n_data={n_data}"
            )

    def _line(self, idx: int) -> int:
        lay = self.layout
        mask = 0
        for r in range(lay.k_rows):
            for c in range(lay.n_data):
                if (r + self.SLOPE * c) % self.p == idx:
                    mask |= 1 << lay.eid(c, r)
        return mask

    def _build_parity_equations(self) -> List[int]:
        lay = self.layout
        k = lay.k_rows
        p_disk, q_disk = lay.n_data, lay.n_data + 1
        eqs = []
        for r in range(k):
            eq = 1 << lay.eid(p_disk, r)
            for d in range(lay.n_data):
                eq |= 1 << lay.eid(d, r)
            eqs.append(eq)
        adjuster = self._line(self.p - 1)
        for i in range(k):
            eqs.append((1 << lay.eid(q_disk, i)) | self._line(i) | adjuster)
        return eqs


def main() -> None:
    code = WeavedParityCode(p=7, n_data=6)
    print(code.describe())
    print(f"generator density: {code.density()} ones\n")

    khan = khan_scheme(code, 0)
    u = u_scheme(code, 0)
    print("recovery of disk 0:")
    print(f"  khan: {khan.summary()}")
    print(f"  u:    {u.summary()}")
    print(u.render())

    codec = StripeCodec(code, element_size=1024)
    stripe = codec.encode(codec.random_data(np.random.default_rng(1)))
    assert Reconstructor(u).verify_stripe(stripe)
    print("\nbyte-exact recovery verified")

    for name, scheme in (("khan", khan), ("u", u)):
        speed = simulate_stack_recovery(code, [scheme]).speed_mb_s
        print(f"simulated recovery speed ({name}): {speed:.1f} MB/s")


if __name__ == "__main__":
    main()
