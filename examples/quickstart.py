#!/usr/bin/env python
"""Quickstart: generate, inspect, execute and time recovery schemes.

Reproduces the paper's Figure 1 setting — RDP with 6 data + 2 parity disks
(p = 7), first data disk failed — and walks the full pipeline:

1. build the code and the four recovery schemes (naive / Khan / C / U);
2. print their read pictures and load statistics;
3. execute the U-Scheme on random bytes and verify the rebuilt disk;
4. time all schemes on the simulated 16 MB-element SAS array.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SAVVIO_10K3,
    Reconstructor,
    StripeCodec,
    make_code,
    simulate_stack_recovery,
)
from repro.recovery import c_scheme, khan_scheme, naive_scheme, u_scheme


def main() -> None:
    # -- 1. the Figure 1 setting -----------------------------------------
    code = make_code("rdp", 8)  # 6 data + 2 parity disks, p = 7
    print(code.describe())
    failed_disk = 0

    schemes = {
        "naive": naive_scheme(code, failed_disk),
        "khan": khan_scheme(code, failed_disk),
        "c": c_scheme(code, failed_disk),
        "u": u_scheme(code, failed_disk),
    }

    # -- 2. inspect ------------------------------------------------------
    print("\nPer-scheme read statistics (X = failed, R = read):")
    for name, scheme in schemes.items():
        print(f"\n--- {name}-scheme: total={scheme.total_reads} "
              f"max_load={scheme.max_load} loads={scheme.loads}")
        print(scheme.render())

    # -- 3. execute on real bytes ----------------------------------------
    codec = StripeCodec(code, element_size=4096)
    stripe = codec.encode(codec.random_data(np.random.default_rng(42)))
    recon = Reconstructor(schemes["u"])
    assert recon.verify_stripe(stripe), "recovered bytes differ!"
    print("\nU-scheme recovered the failed disk byte-exactly "
          f"({recon.elements_read} elements read).")

    # -- 4. simulated recovery speed (paper Figure 4 metric) -------------
    print(f"\nSimulated recovery speed ({SAVVIO_10K3.element_mb:.0f} MB "
          "elements, Savvio 10K.3 timing):")
    for name, scheme in schemes.items():
        result = simulate_stack_recovery(code, [scheme], stacks=20)
        print(f"  {name:5s}: {result.speed_mb_s:6.1f} MB/s "
              f"({result.recovery_time_s:6.1f} s for "
              f"{result.data_recovered_mb / 1024:.1f} GB)")


if __name__ == "__main__":
    main()
