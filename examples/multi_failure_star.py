#!/usr/bin/env python
"""Beyond single-disk failure (paper Sec. V-D) with the STAR code.

The U-Algorithm's failed-element set is arbitrary: bursts of two whole
disks, a disk plus latent sector errors, scattered undetected errors.  This
example runs all of them on a triple-fault-tolerant STAR array, validates
the recovered bytes, and shows the load-balance gain over Khan's
minimum-read schemes in each situation.

Run:  python examples/multi_failure_star.py
"""

from repro import make_code, verify_scheme_on_random_data
from repro.recovery import recover_failure


def main() -> None:
    code = make_code("star", 10)  # 7 data + 3 parity, p = 7
    lay = code.layout
    print(code.describe(), "\n")

    situations = {
        "two whole disks": lay.disk_mask(0) | lay.disk_mask(3),
        "three whole disks": lay.disk_mask(0) | lay.disk_mask(1) | lay.disk_mask(5),
        "disk + latent sectors": lay.disk_mask(2)
        | lay.element_mask([(4, 1), (6, 3)]),
        "scattered sector errors": lay.element_mask(
            [(0, 0), (1, 2), (3, 4), (5, 1), (6, 5)]
        ),
    }

    print(f"{'situation':26s} {'failed':>6s} {'khan max/total':>15s} "
          f"{'u max/total':>12s}")
    for name, mask in situations.items():
        khan = recover_failure(code, mask, algorithm="khan")
        u = recover_failure(code, mask, algorithm="u")
        for scheme in (khan, u):
            scheme.validate(code)
            assert verify_scheme_on_random_data(code, scheme, seed=13), name
        print(f"{name:26s} {mask.bit_count():6d} "
              f"{khan.max_load:7d}/{khan.total_reads:<6d} "
              f"{u.max_load:5d}/{u.total_reads:<6d}")

    print("\nall situations recovered byte-exactly; "
          "U never loads a disk harder than Khan")


if __name__ == "__main__":
    main()
