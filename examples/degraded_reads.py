#!/usr/bin/env python
"""Degraded reads: serving I/O for data on the dead disk.

Until the rebuild finishes, every read addressed to the failed disk must be
reconstructed on the fly.  This example plans per-row degraded-read schemes
for an EVENODD array, executes one against real bytes, and then replays
user traffic through the event-driven simulator with on-the-fly
reconstruction enabled — measuring the latency penalty of degraded mode.

Run:  python examples/degraded_reads.py
"""

import numpy as np

from repro import StripeCodec, make_code
from repro.disksim import EventDrivenArray, PoissonWorkload
from repro.recovery import (
    build_degraded_plans,
    degraded_read_scheme,
    serve_degraded_read,
    u_scheme,
)


def main() -> None:
    code = make_code("evenodd", 9)  # 7 data + 2 parity
    lay = code.layout
    failed = 2
    print(code.describe())

    # -- plan and execute one degraded read -------------------------------
    plan = degraded_read_scheme(code, failed, rows=[1, 4])
    print(f"\ndegraded read of rows [1, 4] on failed disk {failed}: "
          f"{plan.total_reads} elements, max per-disk load {plan.max_load}")

    codec = StripeCodec(code, element_size=512)
    stripe = codec.encode(codec.random_data(np.random.default_rng(7)))
    out = serve_degraded_read(code, plan, stripe)
    for row in (1, 4):
        eid = lay.eid(failed, row)
        assert np.array_equal(out[eid], stripe[eid])
    print("reconstructed bytes verified against the original")

    # -- degraded service under recovery + user load ----------------------
    plans = build_degraded_plans(code, failed)
    recovery = [u_scheme(code, failed, depth=1)]
    workload = PoissonWorkload(6.0, lay.n_disks, lay.k_rows, seed=99)
    requests = workload.generate(duration_s=240.0)
    n_degraded = sum(1 for r in requests if r.disk == failed)

    res = EventDrivenArray(lay.n_disks).run_online_recovery(
        code,
        recovery,
        stripes=30,
        user_requests=requests,
        failed_disk=failed,
        degraded_plans=plans,
    )
    print("\nonline recovery with degraded service:")
    print(f"  {res.user_requests_served} user reads served "
          f"({n_degraded} reconstructed on the fly)")
    print(f"  mean latency {res.user_mean_latency_s*1000:.1f} ms, "
          f"p95 {res.user_p95_latency_s*1000:.1f} ms")
    print("  recovery of 30 stripes finished at "
          f"{res.recovery_finish_s:.1f} s")


if __name__ == "__main__":
    main()
